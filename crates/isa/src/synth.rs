//! Synthetic instruction sets standing in for the paper's SPEC-derived
//! form lists (§5.1.2: 310 x86-64 forms, 390 ARMv8-A forms).
//!
//! The generators are deterministic: they enumerate realistic mnemonic ×
//! width × operand-shape combinations per [`OpClass`] and pad with alias
//! forms (distinct mnemonics implemented identically, as real ISAs have in
//! abundance) to hit the paper's exact form counts. Aliases are realistic
//! *and* useful: they exercise PMEvo's congruence filtering the same way
//! the paper's instruction sets do.

use crate::form::{InstructionForm, InstructionSet, OpClass};
use crate::operand::{Access, OperandKind, RegClass, Width};

/// Number of x86-64 instruction forms used in the paper's evaluation.
pub const NUM_X86_FORMS: usize = 310;
/// Number of ARMv8-A instruction forms used in the paper's evaluation.
pub const NUM_ARM_FORMS: usize = 390;

fn r(class: RegClass, width: Width) -> OperandKind {
    OperandKind::reg_read(class, width)
}

fn w(class: RegClass, width: Width) -> OperandKind {
    OperandKind::reg_write(class, width)
}

fn rw(class: RegClass, width: Width) -> OperandKind {
    OperandKind::reg_rw(class, width)
}

fn imm(width: Width) -> OperandKind {
    OperandKind::Imm { width }
}

fn mem(width: Width, access: Access) -> OperandKind {
    OperandKind::Mem { width, access }
}

fn form_name(mnemonic: &str, operands: &[OperandKind]) -> String {
    let mut name = mnemonic.to_string();
    for op in operands {
        name.push('_');
        let part = match op {
            OperandKind::Reg { class, width, .. } => match class {
                RegClass::Gpr => format!("r{}", width.bits()),
                RegClass::Vec => format!("v{}", width.bits()),
            },
            OperandKind::Mem { width, .. } => format!("m{}", width.bits()),
            OperandKind::Imm { width } => format!("i{}", width.bits()),
        };
        name.push_str(&part);
    }
    name
}

fn push(isa: &mut InstructionSet, mnemonic: &str, class: OpClass, ops: Vec<OperandKind>, quirk: u8) {
    let name = form_name(mnemonic, &ops);
    isa.push(InstructionForm::new(name, class, ops, quirk));
}

/// Pads `isa` with alias forms of simple register-register arithmetic
/// until it has exactly `target` forms, or truncates excess (never needed
/// for the built-in generators; asserted in tests).
fn pad_to(isa: &mut InstructionSet, target: usize, class: OpClass, reg_class: RegClass) {
    let mut i = 0usize;
    while isa.len() < target {
        let width = if i.is_multiple_of(2) { Width::W64 } else { Width::W32 };
        let ops = vec![rw(reg_class, width), r(reg_class, width)];
        push(isa, &format!("alias{i}"), class, ops, 0);
        i += 1;
    }
    assert!(
        isa.len() == target,
        "generator overshot: {} > {target} forms",
        isa.len()
    );
}

/// The synthetic x86-64-like instruction set (exactly [`NUM_X86_FORMS`]
/// forms).
///
/// Covers the classes the paper's SPEC-derived x86 set contains: scalar
/// ALU (register and memory-source variants), shifts, `lea`, multiplies,
/// long-latency divides, the `BTx` bit-test family, conditional moves,
/// SSE/AVX-like vector arithmetic at 128/256 bit, shuffles, conversions,
/// loads and stores.
pub fn synthetic_x86() -> InstructionSet {
    use OpClass::*;
    use RegClass::{Gpr, Vec as V};
    use Width::{W128, W256, W32, W64};

    let mut isa = InstructionSet::new("synthetic-x86-64");
    let gw = [W32, W64];
    let vw = [W128, W256];

    // Scalar ALU: two-operand rr and ri forms.
    for m in ["add", "sub", "and", "or", "xor", "cmp", "test", "mov"] {
        for &wd in &gw {
            push(&mut isa, m, IntAlu, vec![rw(Gpr, wd), r(Gpr, wd)], 0);
            push(&mut isa, m, IntAlu, vec![rw(Gpr, wd), imm(W32)], 0);
        }
    }
    // One-operand ALU.
    for m in ["inc", "dec", "neg", "not"] {
        for &wd in &gw {
            push(&mut isa, m, IntAlu, vec![rw(Gpr, wd)], 0);
        }
    }
    // Carry-using ALU: separate µop flavour on most machines.
    for m in ["adc", "sbb"] {
        for &wd in &gw {
            push(&mut isa, m, IntAlu, vec![rw(Gpr, wd), r(Gpr, wd)], 1);
        }
    }
    // ALU with memory source: decomposes into load + ALU µop.
    for m in ["add", "sub", "and", "or", "xor", "cmp"] {
        for &wd in &gw {
            push(
                &mut isa,
                m,
                IntAlu,
                vec![rw(Gpr, wd), mem(wd, Access::Read)],
                0,
            );
        }
    }

    // Shifts.
    for m in ["shl", "shr", "sar", "rol", "ror"] {
        for &wd in &gw {
            push(&mut isa, m, Shift, vec![rw(Gpr, wd), imm(W32)], 0);
        }
    }
    for m in ["shld", "shrd"] {
        for &wd in &gw {
            push(
                &mut isa,
                m,
                Shift,
                vec![rw(Gpr, wd), r(Gpr, wd), imm(W32)],
                1,
            );
        }
    }

    // lea: simple (quirk 0) and complex addressing (quirk 1).
    for &wd in &gw {
        push(&mut isa, "lea", Lea, vec![w(Gpr, wd), r(Gpr, W64)], 0);
        push(
            &mut isa,
            "lea3",
            Lea,
            vec![w(Gpr, wd), r(Gpr, W64), r(Gpr, W64)],
            1,
        );
    }

    // Integer multiply.
    for &wd in &gw {
        push(&mut isa, "imul", IntMul, vec![rw(Gpr, wd), r(Gpr, wd)], 0);
        push(
            &mut isa,
            "imul3",
            IntMul,
            vec![w(Gpr, wd), r(Gpr, wd), imm(W32)],
            0,
        );
        push(&mut isa, "mulhi", IntMul, vec![rw(Gpr, wd), r(Gpr, wd)], 1);
    }

    // Integer divide: long-latency blocking operations.
    for m in ["div", "idiv"] {
        for &wd in &gw {
            push(&mut isa, m, IntDiv, vec![rw(Gpr, wd), r(Gpr, wd)], 0);
        }
    }

    // Bit test family (the paper's BTx outlier cluster) and bit counts.
    for (q, m) in ["bt", "btc", "btr", "bts"].iter().enumerate() {
        for &wd in &gw {
            push(&mut isa, m, BitTest, vec![rw(Gpr, wd), imm(W32)], q as u8);
        }
    }
    for m in ["popcnt", "lzcnt", "tzcnt"] {
        for &wd in &gw {
            push(&mut isa, m, BitTest, vec![w(Gpr, wd), r(Gpr, wd)], 4);
        }
    }

    // Conditional moves.
    for m in ["cmove", "cmovne", "cmovl", "cmovg"] {
        for &wd in &gw {
            push(&mut isa, m, CondMove, vec![rw(Gpr, wd), r(Gpr, wd)], 0);
        }
    }

    // Vector ALU.
    for m in [
        "paddb", "paddw", "paddd", "paddq", "psubb", "psubw", "psubd", "psubq", "pand", "por",
        "pxor", "pcmpeqd", "pminsd", "pmaxsd", "addps", "addpd", "subps", "subpd",
    ] {
        for &wd in &vw {
            push(&mut isa, m, VecAlu, vec![w(V, wd), r(V, wd), r(V, wd)], 0);
        }
    }
    // Vector multiply / FMA.
    for (q, m) in [
        "pmulld", "pmullw", "mulps", "mulpd", "fmadd213ps", "fmadd213pd",
    ]
    .iter()
    .enumerate()
    {
        for &wd in &vw {
            push(
                &mut isa,
                m,
                VecMul,
                vec![rw(V, wd), r(V, wd), r(V, wd)],
                (q >= 4) as u8,
            );
        }
    }
    // Vector divide / sqrt.
    for (q, m) in ["divps", "divpd", "sqrtps", "sqrtpd"].iter().enumerate() {
        for &wd in &vw {
            push(&mut isa, m, VecDiv, vec![w(V, wd), r(V, wd)], q as u8 / 2);
        }
    }
    // Shuffles.
    for m in [
        "pshufd",
        "pshufb",
        "punpcklbw",
        "punpckhbw",
        "palignr",
        "pblendw",
        "permilps",
        "unpcklps",
    ] {
        for &wd in &vw {
            push(&mut isa, m, Shuffle, vec![w(V, wd), r(V, wd), r(V, wd)], 0);
        }
    }
    // Conversions.
    for m in ["cvtdq2ps", "cvtps2dq", "cvtpd2ps", "cvtps2pd"] {
        for &wd in &vw {
            push(&mut isa, m, Convert, vec![w(V, wd), r(V, wd)], 0);
        }
    }
    push(&mut isa, "cvtsi2ss", Convert, vec![w(V, W128), r(Gpr, W64)], 1);
    push(&mut isa, "cvtsi2sd", Convert, vec![w(V, W128), r(Gpr, W64)], 1);
    push(&mut isa, "cvtss2si", Convert, vec![w(Gpr, W64), r(V, W128)], 1);
    push(&mut isa, "cvtsd2si", Convert, vec![w(Gpr, W64), r(V, W128)], 1);

    // Loads.
    for &wd in &gw {
        push(&mut isa, "mov", Load, vec![w(Gpr, wd), mem(wd, Access::Read)], 0);
        push(
            &mut isa,
            "movzx",
            Load,
            vec![w(Gpr, wd), mem(W32, Access::Read)],
            0,
        );
    }
    for m in ["movups", "movaps", "movdqu"] {
        for &wd in &vw {
            push(&mut isa, m, Load, vec![w(V, wd), mem(wd, Access::Read)], 0);
        }
    }
    // Stores.
    for &wd in &gw {
        push(
            &mut isa,
            "mov",
            Store,
            vec![mem(wd, Access::Write), r(Gpr, wd)],
            0,
        );
    }
    for m in ["movups", "movaps", "movdqu"] {
        for &wd in &vw {
            push(&mut isa, m, Store, vec![mem(wd, Access::Write), r(V, wd)], 0);
        }
    }

    pad_to(&mut isa, NUM_X86_FORMS, IntAlu, Gpr);
    isa
}

/// The synthetic ARMv8-A-like instruction set (exactly [`NUM_ARM_FORMS`]
/// forms): three-operand scalar arithmetic, shifted-operand variants,
/// multiply/multiply-accumulate, divides, NEON vector operations at
/// 128 bit, loads and stores.
pub fn synthetic_arm() -> InstructionSet {
    use OpClass::*;
    use RegClass::{Gpr, Vec as V};
    use Width::{W128, W32, W64};

    let mut isa = InstructionSet::new("synthetic-armv8");
    let gw = [W32, W64];

    // Three-operand scalar ALU, register and immediate forms.
    for m in [
        "add", "sub", "and", "orr", "eor", "bic", "orn", "eon", "adds", "subs", "ands",
    ] {
        for &wd in &gw {
            push(
                &mut isa,
                m,
                IntAlu,
                vec![w(Gpr, wd), r(Gpr, wd), r(Gpr, wd)],
                0,
            );
            push(&mut isa, m, IntAlu, vec![w(Gpr, wd), r(Gpr, wd), imm(W32)], 0);
        }
    }
    // Shifted-register variants occupy the shifter: distinct quirk.
    for m in ["add_lsl", "sub_lsl", "and_lsl", "orr_lsl"] {
        for &wd in &gw {
            push(
                &mut isa,
                m,
                IntAlu,
                vec![w(Gpr, wd), r(Gpr, wd), r(Gpr, wd)],
                1,
            );
        }
    }
    // Moves and move-wide.
    for m in ["mov", "mvn", "movz", "movk", "movn"] {
        for &wd in &gw {
            push(&mut isa, m, IntAlu, vec![w(Gpr, wd), imm(W32)], 0);
        }
    }
    // Shifts.
    for m in ["lsl", "lsr", "asr", "ror"] {
        for &wd in &gw {
            push(&mut isa, m, Shift, vec![w(Gpr, wd), r(Gpr, wd), r(Gpr, wd)], 0);
            push(&mut isa, m, Shift, vec![w(Gpr, wd), r(Gpr, wd), imm(W32)], 0);
        }
    }
    // Bitfield / extract (shifter pipe).
    for m in ["ubfm", "sbfm", "extr", "rbit", "rev", "clz"] {
        for &wd in &gw {
            push(&mut isa, m, BitTest, vec![w(Gpr, wd), r(Gpr, wd)], 0);
        }
    }
    // Address-like arithmetic.
    for &wd in &gw {
        push(&mut isa, "adr", Lea, vec![w(Gpr, wd), imm(W32)], 0);
        push(&mut isa, "adrp", Lea, vec![w(Gpr, wd), imm(W32)], 0);
    }
    // Multiplies and multiply-accumulate.
    for m in ["mul", "mneg"] {
        for &wd in &gw {
            push(&mut isa, m, IntMul, vec![w(Gpr, wd), r(Gpr, wd), r(Gpr, wd)], 0);
        }
    }
    for m in ["madd", "msub"] {
        for &wd in &gw {
            push(
                &mut isa,
                m,
                IntMul,
                vec![w(Gpr, wd), r(Gpr, wd), r(Gpr, wd), r(Gpr, wd)],
                1,
            );
        }
    }
    push(
        &mut isa,
        "smulh",
        IntMul,
        vec![w(Gpr, W64), r(Gpr, W64), r(Gpr, W64)],
        1,
    );
    push(
        &mut isa,
        "umulh",
        IntMul,
        vec![w(Gpr, W64), r(Gpr, W64), r(Gpr, W64)],
        1,
    );
    // Divides.
    for m in ["sdiv", "udiv"] {
        for &wd in &gw {
            push(&mut isa, m, IntDiv, vec![w(Gpr, wd), r(Gpr, wd), r(Gpr, wd)], 0);
        }
    }
    // Conditional select family.
    for m in ["csel", "csinc", "csinv", "csneg"] {
        for &wd in &gw {
            push(
                &mut isa,
                m,
                CondMove,
                vec![w(Gpr, wd), r(Gpr, wd), r(Gpr, wd)],
                0,
            );
        }
    }

    // NEON vector ALU (128-bit with element-size suffixes).
    for m in [
        "add_8b", "add_16b", "add_4h", "add_8h", "add_4s", "add_2d", "sub_8b", "sub_16b",
        "sub_4h", "sub_8h", "sub_4s", "sub_2d", "and_v", "orr_v", "eor_v", "bic_v", "cmeq_4s",
        "cmgt_4s", "smin_4s", "smax_4s", "fadd_4s", "fadd_2d", "fsub_4s", "fsub_2d", "fabs_4s",
        "fneg_4s",
    ] {
        push(&mut isa, m, VecAlu, vec![w(V, W128), r(V, W128), r(V, W128)], 0);
    }
    // NEON multiplies / FMA.
    for (q, m) in [
        "mul_4s", "mul_8h", "fmul_4s", "fmul_2d", "fmla_4s", "fmla_2d", "sqdmulh_4s",
    ]
    .iter()
    .enumerate()
    {
        push(
            &mut isa,
            m,
            VecMul,
            vec![rw(V, W128), r(V, W128), r(V, W128)],
            (q >= 4) as u8,
        );
    }
    // NEON divide/sqrt.
    for (q, m) in ["fdiv_4s", "fdiv_2d", "fsqrt_4s", "fsqrt_2d"].iter().enumerate() {
        push(&mut isa, m, VecDiv, vec![w(V, W128), r(V, W128)], q as u8 / 2);
    }
    // Permutes.
    for m in [
        "zip1", "zip2", "uzp1", "uzp2", "trn1", "trn2", "tbl", "ext", "rev64_v", "dup_4s",
    ] {
        push(&mut isa, m, Shuffle, vec![w(V, W128), r(V, W128), r(V, W128)], 0);
    }
    // Conversions.
    for m in ["scvtf_4s", "ucvtf_4s", "fcvtzs_4s", "fcvtzu_4s", "fcvtn", "fcvtl"] {
        push(&mut isa, m, Convert, vec![w(V, W128), r(V, W128)], 0);
    }
    for m in ["scvtf", "ucvtf"] {
        for &wd in &gw {
            push(&mut isa, m, Convert, vec![w(V, W128), r(Gpr, wd)], 1);
        }
    }
    for m in ["fcvtzs", "fcvtzu"] {
        for &wd in &gw {
            push(&mut isa, m, Convert, vec![w(Gpr, wd), r(V, W128)], 1);
        }
    }

    // Loads and stores (scalar and vector).
    for m in ["ldr", "ldur"] {
        for &wd in &gw {
            push(&mut isa, m, Load, vec![w(Gpr, wd), mem(wd, Access::Read)], 0);
        }
    }
    push(&mut isa, "ldr_q", Load, vec![w(V, W128), mem(W128, Access::Read)], 0);
    push(&mut isa, "ldur_q", Load, vec![w(V, W128), mem(W128, Access::Read)], 0);
    for m in ["str", "stur"] {
        for &wd in &gw {
            push(&mut isa, m, Store, vec![mem(wd, Access::Write), r(Gpr, wd)], 0);
        }
    }
    push(
        &mut isa,
        "str_q",
        Store,
        vec![mem(W128, Access::Write), r(V, W128)],
        0,
    );

    pad_to(&mut isa, NUM_ARM_FORMS, IntAlu, Gpr);
    isa
}

/// A six-instruction toy ISA for unit tests and the quickstart example:
/// add, mul, div, load, store and a vector op.
pub fn tiny_isa() -> InstructionSet {
    use OpClass::*;
    use RegClass::{Gpr, Vec as V};
    use Width::{W128, W64};

    let mut isa = InstructionSet::new("tiny");
    push(
        &mut isa,
        "add",
        IntAlu,
        vec![w(Gpr, W64), r(Gpr, W64), r(Gpr, W64)],
        0,
    );
    push(
        &mut isa,
        "mul",
        IntMul,
        vec![w(Gpr, W64), r(Gpr, W64), r(Gpr, W64)],
        0,
    );
    push(&mut isa, "div", IntDiv, vec![w(Gpr, W64), r(Gpr, W64)], 0);
    push(&mut isa, "load", Load, vec![w(Gpr, W64), mem(W64, Access::Read)], 0);
    push(
        &mut isa,
        "store",
        Store,
        vec![mem(W64, Access::Write), r(Gpr, W64)],
        0,
    );
    push(
        &mut isa,
        "vadd",
        VecAlu,
        vec![w(V, W128), r(V, W128), r(V, W128)],
        0,
    );
    isa
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn x86_has_exactly_310_forms() {
        let isa = synthetic_x86();
        assert_eq!(isa.len(), NUM_X86_FORMS);
    }

    #[test]
    fn arm_has_exactly_390_forms() {
        let isa = synthetic_arm();
        assert_eq!(isa.len(), NUM_ARM_FORMS);
    }

    #[test]
    fn form_names_are_unique() {
        for isa in [synthetic_x86(), synthetic_arm(), tiny_isa()] {
            let names: HashSet<&str> = isa.forms().iter().map(|f| f.name.as_str()).collect();
            assert_eq!(names.len(), isa.len(), "duplicate names in {}", isa.name());
        }
    }

    #[test]
    fn all_op_classes_are_represented() {
        for isa in [synthetic_x86(), synthetic_arm()] {
            let classes: HashSet<OpClass> = isa.forms().iter().map(|f| f.class).collect();
            for c in [
                OpClass::IntAlu,
                OpClass::IntMul,
                OpClass::IntDiv,
                OpClass::VecAlu,
                OpClass::Load,
                OpClass::Store,
                OpClass::Shuffle,
            ] {
                assert!(classes.contains(&c), "{} lacks {c}", isa.name());
            }
        }
    }

    #[test]
    fn mem_operand_flags_are_consistent() {
        let isa = synthetic_x86();
        for f in isa.forms() {
            match f.class {
                OpClass::Load | OpClass::Store => {
                    assert!(f.has_mem_operand(), "{} lacks mem operand", f.name)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn x86_has_memory_source_alu_forms() {
        let isa = synthetic_x86();
        let with_mem = isa
            .forms()
            .iter()
            .filter(|f| f.class == OpClass::IntAlu && f.has_mem_operand())
            .count();
        assert!(with_mem >= 12);
    }

    #[test]
    fn tiny_isa_shape() {
        let isa = tiny_isa();
        assert_eq!(isa.len(), 6);
        assert!(isa.find("add_r64_r64_r64").is_some());
        assert!(isa.find("vadd_v128_v128_v128").is_some());
    }
}
