//! The dependency-avoiding register allocator of paper §4.2.
//!
//! The measurement loops must be free of read-after-write dependencies so
//! that the port mapping is the only throughput limiter. The paper's
//! policy, implemented here:
//!
//! * **written** operands are instantiated with the *most recently read*
//!   register of the class (its value has just been consumed, so the new
//!   write cannot starve a pending reader), and
//! * **read** operands with the *least recently written* register (the
//!   producer is as far in the past as possible, so even long-latency
//!   results have retired),
//! * memory operands get a dedicated base register (never written) and one
//!   of several rotating constant offsets, so memory accesses never alias.
//!
//! Write-after-read and write-after-write hazards are ignored: the
//! processor's register management engine renames them away (paper §2).

use crate::form::InstructionForm;
use crate::loopgen::KernelInst;
use crate::operand::{Access, MemRef, OperandKind, Reg, RegClass};
use pmevo_core::InstId;

/// Number of distinct memory offsets rotated through for memory operands.
const NUM_MEM_OFFSETS: u32 = 8;
/// Stride between rotating memory offsets, in bytes (a cache line).
const MEM_OFFSET_STRIDE: u32 = 64;

#[derive(Debug, Clone, Copy, Default)]
struct RegState {
    last_read: u64,
    last_write: u64,
}

/// Register allocator state for one measurement loop.
///
/// # Example
///
/// ```
/// use pmevo_isa::{
///     InstructionForm, OpClass, OperandKind, RegClass, RegisterAllocator, Width,
/// };
/// use pmevo_core::InstId;
///
/// let form = InstructionForm::new(
///     "add",
///     OpClass::IntAlu,
///     vec![
///         OperandKind::reg_write(RegClass::Gpr, Width::W64),
///         OperandKind::reg_read(RegClass::Gpr, Width::W64),
///     ],
///     0,
/// );
/// let mut ra = RegisterAllocator::new(16, 16);
/// let a = ra.instantiate(InstId(0), &form);
/// let b = ra.instantiate(InstId(0), &form);
/// // Consecutive instances read different registers.
/// assert_ne!(a.reads[0], b.reads[0]);
/// ```
#[derive(Debug, Clone)]
pub struct RegisterAllocator {
    gpr: Vec<RegState>,
    vec: Vec<RegState>,
    /// Logical clock; incremented per processed operand.
    time: u64,
    /// Dedicated memory base pointer, excluded from the GPR pool.
    base: Reg,
    /// Rotating offset counter for memory operands.
    next_offset: u32,
}

impl RegisterAllocator {
    /// Creates an allocator with `num_gpr` general-purpose and `num_vec`
    /// vector registers. One GPR is reserved as the memory base pointer.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpr < 2` or `num_vec < 1`.
    pub fn new(num_gpr: usize, num_vec: usize) -> Self {
        assert!(num_gpr >= 2, "need at least 2 GPRs (one is the base pointer)");
        assert!(num_vec >= 1, "need at least 1 vector register");
        // Stagger initial timestamps so that ties rotate deterministically
        // through the register file instead of always picking index 0.
        let init = |n: usize| {
            (0..n)
                .map(|i| RegState {
                    last_read: i as u64,
                    last_write: i as u64,
                })
                .collect::<Vec<_>>()
        };
        let time = (num_gpr.max(num_vec) + 1) as u64;
        RegisterAllocator {
            gpr: init(num_gpr - 1),
            vec: init(num_vec),
            time,
            base: Reg {
                class: RegClass::Gpr,
                index: (num_gpr - 1) as u16,
            },
            next_offset: 0,
        }
    }

    /// The reserved memory base-pointer register.
    pub fn base_pointer(&self) -> Reg {
        self.base
    }

    fn pool(&mut self, class: RegClass) -> &mut Vec<RegState> {
        match class {
            RegClass::Gpr => &mut self.gpr,
            RegClass::Vec => &mut self.vec,
        }
    }

    /// Picks a register to read: least recently written, avoiding the
    /// registers in `taken` (already used by this instruction).
    fn pick_read(&mut self, class: RegClass, taken: &[Reg]) -> Reg {
        let base = self.base;
        let t = self.time;
        self.time += 1;
        let pool = self.pool(class);
        let idx = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                !taken.contains(&Reg {
                    class,
                    index: *i as u16,
                })
            })
            .min_by_key(|(_, s)| (s.last_write, s.last_read))
            .map(|(i, _)| i)
            .expect("register pool exhausted by one instruction");
        pool[idx].last_read = t;
        debug_assert!(class != RegClass::Gpr || (idx as u16) != base.index);
        Reg {
            class,
            index: idx as u16,
        }
    }

    /// Picks a register to write: most recently read, avoiding `taken`.
    fn pick_write(&mut self, class: RegClass, taken: &[Reg]) -> Reg {
        let t = self.time;
        self.time += 1;
        let pool = self.pool(class);
        let idx = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                !taken.contains(&Reg {
                    class,
                    index: *i as u16,
                })
            })
            .max_by_key(|(_, s)| (s.last_read, std::cmp::Reverse(s.last_write)))
            .map(|(i, _)| i)
            .expect("register pool exhausted by one instruction");
        pool[idx].last_write = t;
        Reg {
            class,
            index: idx as u16,
        }
    }

    /// Instantiates one instruction form with concrete operands.
    pub fn instantiate(&mut self, id: InstId, form: &InstructionForm) -> KernelInst {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut mem = None;
        let mut taken: Vec<Reg> = Vec::new();
        for op in &form.operands {
            match *op {
                OperandKind::Reg { class, access, .. } => match access {
                    Access::Read => {
                        let r = self.pick_read(class, &taken);
                        taken.push(r);
                        reads.push(r);
                    }
                    Access::Write => {
                        let r = self.pick_write(class, &taken);
                        taken.push(r);
                        writes.push(r);
                    }
                    Access::ReadWrite => {
                        // The read side dominates the dependency structure:
                        // pick least recently written, then mark both.
                        let r = self.pick_read(class, &taken);
                        let t = self.time;
                        self.time += 1;
                        let pool = self.pool(class);
                        pool[r.index as usize].last_write = t;
                        taken.push(r);
                        reads.push(r);
                        writes.push(r);
                    }
                },
                OperandKind::Mem { access, .. } => {
                    let offset = (self.next_offset % NUM_MEM_OFFSETS) * MEM_OFFSET_STRIDE;
                    self.next_offset += 1;
                    reads.push(self.base);
                    mem = Some(MemRef {
                        base: self.base,
                        offset,
                        access,
                    });
                }
                OperandKind::Imm { .. } => {}
            }
        }
        KernelInst {
            inst: id,
            reads,
            writes,
            mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::OpClass;
    use crate::operand::Width;

    fn rw_form() -> InstructionForm {
        InstructionForm::new(
            "add",
            OpClass::IntAlu,
            vec![
                OperandKind::reg_rw(RegClass::Gpr, Width::W64),
                OperandKind::reg_read(RegClass::Gpr, Width::W64),
            ],
            0,
        )
    }

    fn w_r_form() -> InstructionForm {
        InstructionForm::new(
            "mov",
            OpClass::IntAlu,
            vec![
                OperandKind::reg_write(RegClass::Gpr, Width::W64),
                OperandKind::reg_read(RegClass::Gpr, Width::W64),
            ],
            0,
        )
    }

    #[test]
    fn reads_rotate_through_the_register_file() {
        let mut ra = RegisterAllocator::new(9, 4);
        let form = w_r_form();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let inst = ra.instantiate(InstId(0), &form);
            seen.insert(inst.reads[0]);
        }
        // 8 allocatable GPRs (one reserved as base): all get used.
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn dependence_distance_is_maximal() {
        // With n allocatable registers, a read must never name a register
        // written in the previous floor(n/2) instructions (generous bound).
        let mut ra = RegisterAllocator::new(9, 4);
        let form = w_r_form();
        let mut history: Vec<KernelInst> = Vec::new();
        for _ in 0..64 {
            let inst = ra.instantiate(InstId(0), &form);
            for recent in history.iter().rev().take(4) {
                for r in &inst.reads {
                    assert!(
                        !recent.writes.contains(r),
                        "read {r} too close to its writer"
                    );
                }
            }
            history.push(inst);
        }
    }

    #[test]
    fn rw_operand_is_read_and_written_same_register() {
        let mut ra = RegisterAllocator::new(4, 1);
        let inst = ra.instantiate(InstId(0), &rw_form());
        assert_eq!(inst.writes.len(), 1);
        assert_eq!(inst.reads.len(), 2);
        assert!(inst.reads.contains(&inst.writes[0]));
    }

    #[test]
    fn operands_within_an_instruction_are_distinct() {
        let mut ra = RegisterAllocator::new(4, 1);
        for _ in 0..16 {
            let inst = ra.instantiate(InstId(0), &rw_form());
            assert_ne!(inst.reads[0], inst.reads[1]);
        }
    }

    #[test]
    fn memory_operands_use_base_and_rotate_offsets() {
        let mut ra = RegisterAllocator::new(4, 1);
        let form = InstructionForm::new(
            "load",
            OpClass::Load,
            vec![
                OperandKind::reg_write(RegClass::Gpr, Width::W64),
                OperandKind::Mem {
                    width: Width::W64,
                    access: Access::Read,
                },
            ],
            0,
        );
        let a = ra.instantiate(InstId(0), &form);
        let b = ra.instantiate(InstId(0), &form);
        let (ma, mb) = (a.mem.unwrap(), b.mem.unwrap());
        assert_eq!(ma.base, ra.base_pointer());
        assert_ne!(ma.offset, mb.offset);
        // The base pointer is read but never written.
        assert!(a.reads.contains(&ra.base_pointer()));
        assert!(!a.writes.contains(&ra.base_pointer()));
    }

    #[test]
    fn base_pointer_never_allocated() {
        let mut ra = RegisterAllocator::new(3, 1);
        let form = rw_form();
        for _ in 0..32 {
            let inst = ra.instantiate(InstId(0), &form);
            for r in inst.reads.iter().chain(&inst.writes) {
                assert_ne!(*r, ra.base_pointer());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 GPRs")]
    fn too_few_gprs_panics() {
        RegisterAllocator::new(1, 1);
    }
}
