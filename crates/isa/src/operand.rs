//! Operand vocabulary: register classes, widths, access modes.

use std::fmt;

/// Architectural register classes.
///
/// The paper's register allocator (§4.2) assigns "a register from the
/// appropriate register class to each register operand"; classes never
/// alias, so dependencies only arise within a class.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub enum RegClass {
    /// General-purpose integer registers.
    Gpr,
    /// Vector/floating-point registers.
    Vec,
}

impl RegClass {
    /// All register classes, for iteration.
    pub const ALL: [RegClass; 2] = [RegClass::Gpr, RegClass::Vec];
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Gpr => write!(f, "gpr"),
            RegClass::Vec => write!(f, "vec"),
        }
    }
}

/// Operand widths in bits.
///
/// Sub-register widths (8/16 bit on x86) are excluded, mirroring the
/// paper's instruction selection (§5.1.2: "all instruction variants that
/// operate on subregisters" are dropped).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub enum Width {
    /// 32-bit operand.
    W32,
    /// 64-bit operand.
    W64,
    /// 128-bit vector operand.
    W128,
    /// 256-bit vector operand (AVX-like).
    W256,
}

impl Width {
    /// The width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W32 => 32,
            Width::W64 => 64,
            Width::W128 => 128,
            Width::W256 => 256,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// How an instruction accesses an operand placeholder.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash,
)]
pub enum Access {
    /// Operand is only read.
    Read,
    /// Operand is only written.
    Write,
    /// Operand is read and written (e.g. two-operand x86 arithmetic).
    ReadWrite,
}

impl Access {
    /// Whether the operand is read.
    pub fn is_read(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }

    /// Whether the operand is written.
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// A typed operand placeholder of an instruction form (paper §4.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash,
)]
pub enum OperandKind {
    /// A register operand of the given class and width.
    Reg {
        /// Register class the operand draws from.
        class: RegClass,
        /// Operand width.
        width: Width,
        /// Read/write behaviour.
        access: Access,
    },
    /// A memory operand (base register + constant offset, paper §4.2).
    Mem {
        /// Access width.
        width: Width,
        /// Read/write behaviour.
        access: Access,
    },
    /// An immediate constant; never creates dependencies.
    Imm {
        /// Immediate width.
        width: Width,
    },
}

impl OperandKind {
    /// Convenience constructor for a read register operand.
    pub fn reg_read(class: RegClass, width: Width) -> Self {
        OperandKind::Reg {
            class,
            width,
            access: Access::Read,
        }
    }

    /// Convenience constructor for a written register operand.
    pub fn reg_write(class: RegClass, width: Width) -> Self {
        OperandKind::Reg {
            class,
            width,
            access: Access::Write,
        }
    }

    /// Convenience constructor for a read-write register operand.
    pub fn reg_rw(class: RegClass, width: Width) -> Self {
        OperandKind::Reg {
            class,
            width,
            access: Access::ReadWrite,
        }
    }
}

impl fmt::Display for OperandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperandKind::Reg {
                class,
                width,
                access,
            } => {
                let a = match access {
                    Access::Read => "r",
                    Access::Write => "w",
                    Access::ReadWrite => "rw",
                };
                write!(f, "{class}{width}:{a}")
            }
            OperandKind::Mem { width, access } => {
                let a = match access {
                    Access::Read => "r",
                    Access::Write => "w",
                    Access::ReadWrite => "rw",
                };
                write!(f, "mem{width}:{a}")
            }
            OperandKind::Imm { width } => write!(f, "imm{width}"),
        }
    }
}

/// A concrete architectural register, produced by register allocation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct Reg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class's register file.
    pub index: u16,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Gpr => write!(f, "r{}", self.index),
            RegClass::Vec => write!(f, "v{}", self.index),
        }
    }
}

/// A concrete memory reference: base register plus constant offset.
///
/// The allocator keeps base registers dedicated and rotates offsets so that
/// memory accesses of different instructions never alias (paper §4.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash,
)]
pub struct MemRef {
    /// Base-pointer register (always read, never written).
    pub base: Reg,
    /// Constant byte offset.
    pub offset: u32,
    /// Whether the access reads and/or writes memory.
    pub access: Access,
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}+{}]", self.base, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_predicates() {
        assert!(Access::Read.is_read());
        assert!(!Access::Read.is_write());
        assert!(Access::Write.is_write());
        assert!(!Access::Write.is_read());
        assert!(Access::ReadWrite.is_read() && Access::ReadWrite.is_write());
    }

    #[test]
    fn widths_and_display() {
        assert_eq!(Width::W32.bits(), 32);
        assert_eq!(Width::W256.bits(), 256);
        assert_eq!(Width::W64.to_string(), "64");
        assert_eq!(RegClass::Gpr.to_string(), "gpr");
        let op = OperandKind::reg_rw(RegClass::Gpr, Width::W64);
        assert_eq!(op.to_string(), "gpr64:rw");
        assert_eq!(
            OperandKind::Mem {
                width: Width::W128,
                access: Access::Read
            }
            .to_string(),
            "mem128:r"
        );
        assert_eq!(OperandKind::Imm { width: Width::W32 }.to_string(), "imm32");
    }

    #[test]
    fn reg_and_memref_display() {
        let r = Reg {
            class: RegClass::Vec,
            index: 7,
        };
        assert_eq!(r.to_string(), "v7");
        let m = MemRef {
            base: Reg {
                class: RegClass::Gpr,
                index: 0,
            },
            offset: 64,
            access: Access::Read,
        };
        assert_eq!(m.to_string(), "[r0+64]");
    }

    #[test]
    fn reg_class_all_is_exhaustive() {
        assert_eq!(RegClass::ALL.len(), 2);
    }
}
