//! Measurement-loop construction (paper §4.2).
//!
//! An [`Experiment`] (an instruction multiset) is turned into a concrete,
//! register-allocated loop body of roughly 50 instructions: the experiment
//! is unrolled until the body is long enough, instruction instances are
//! interleaved round-robin across forms (harmless under out-of-order
//! execution, but it keeps the fetch stream balanced), and the register
//! allocator instantiates operands so that read-after-write dependencies
//! are pushed maximally far apart.

use crate::form::InstructionSet;
use crate::operand::{MemRef, Reg};
use crate::regalloc::RegisterAllocator;
use pmevo_core::{Experiment, InstId};

/// Default loop-body length; paper §4.2 found 50 instructions appropriate
/// for all evaluated architectures (fits the µop cache, long enough to
/// hide loop overhead).
pub const DEFAULT_BODY_LEN: usize = 50;

/// One concrete, register-allocated instruction instance in a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInst {
    /// The instruction form this instance was instantiated from.
    pub inst: InstId,
    /// Registers read by the instance (including memory base pointers).
    pub reads: Vec<Reg>,
    /// Registers written by the instance.
    pub writes: Vec<Reg>,
    /// Memory reference, if the form has a memory operand.
    pub mem: Option<MemRef>,
}

/// A register-allocated loop body ready for execution on the machine
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    insts: Vec<KernelInst>,
    instances_per_iter: u32,
}

impl Kernel {
    /// The instruction instances of one loop iteration, in program order.
    pub fn insts(&self) -> &[KernelInst] {
        &self.insts
    }

    /// How many copies of the source experiment one loop iteration holds
    /// (the unroll factor), the divisor of the throughput formula in
    /// paper §4.2.
    pub fn instances_per_iter(&self) -> u32 {
        self.instances_per_iter
    }

    /// Number of instructions in one loop iteration.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the kernel body is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Builds measurement kernels from experiments.
///
/// # Example
///
/// ```
/// use pmevo_isa::{synth, LoopBuilder};
/// use pmevo_core::{Experiment, InstId};
///
/// let isa = synth::synthetic_x86();
/// let builder = LoopBuilder::new(&isa);
/// let kernel = builder.build(&Experiment::singleton(InstId(0)));
/// assert_eq!(kernel.len(), 50); // unrolled to the default body length
/// assert_eq!(kernel.instances_per_iter(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct LoopBuilder<'a> {
    isa: &'a InstructionSet,
    target_body_len: usize,
    num_gpr: usize,
    num_vec: usize,
}

impl<'a> LoopBuilder<'a> {
    /// Creates a builder with the default body length (50) and register
    /// file sizes typical of the evaluated ISAs (16 GPRs, 16 vector regs).
    pub fn new(isa: &'a InstructionSet) -> Self {
        LoopBuilder {
            isa,
            target_body_len: DEFAULT_BODY_LEN,
            num_gpr: 16,
            num_vec: 16,
        }
    }

    /// Overrides the target loop-body length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn body_len(mut self, len: usize) -> Self {
        assert!(len > 0, "body length must be positive");
        self.target_body_len = len;
        self
    }

    /// Overrides the register file sizes.
    pub fn register_file(mut self, num_gpr: usize, num_vec: usize) -> Self {
        self.num_gpr = num_gpr;
        self.num_vec = num_vec;
        self
    }

    /// Builds the unrolled, register-allocated kernel for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is empty or references instructions outside the ISA.
    pub fn build(&self, e: &Experiment) -> Kernel {
        assert!(!e.is_empty(), "cannot build a kernel for an empty experiment");
        let per_copy = e.total_insts() as usize;
        let unroll = self.target_body_len.div_ceil(per_copy).max(1);

        // Round-robin interleave the multiset: repeatedly take one
        // instance of each form that still has remaining count.
        let mut order: Vec<InstId> = Vec::with_capacity(per_copy);
        let mut remaining: Vec<(InstId, u32)> = e.counts().to_vec();
        while order.len() < per_copy {
            for (inst, left) in &mut remaining {
                if *left > 0 {
                    order.push(*inst);
                    *left -= 1;
                }
            }
        }

        let mut ra = RegisterAllocator::new(self.num_gpr, self.num_vec);
        let mut insts = Vec::with_capacity(per_copy * unroll);
        for _ in 0..unroll {
            for &id in &order {
                insts.push(ra.instantiate(id, self.isa.form(id)));
            }
        }
        Kernel {
            insts,
            instances_per_iter: unroll as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use pmevo_core::Experiment;
    use std::collections::HashMap;

    #[test]
    fn unrolls_to_cover_target_length() {
        let isa = synth::synthetic_x86();
        let b = LoopBuilder::new(&isa).body_len(50);
        let e = Experiment::from_counts(&[(InstId(0), 1), (InstId(1), 2)]);
        let k = b.build(&e);
        assert!(k.len() >= 50);
        assert_eq!(k.len() % 3, 0);
        assert_eq!(k.instances_per_iter() as usize, k.len() / 3);
    }

    #[test]
    fn body_preserves_multiset_ratios() {
        let isa = synth::synthetic_x86();
        let b = LoopBuilder::new(&isa);
        let e = Experiment::from_counts(&[(InstId(2), 1), (InstId(5), 3)]);
        let k = b.build(&e);
        let mut counts: HashMap<InstId, u32> = HashMap::new();
        for i in k.insts() {
            *counts.entry(i.inst).or_default() += 1;
        }
        let u = k.instances_per_iter();
        assert_eq!(counts[&InstId(2)], u);
        assert_eq!(counts[&InstId(5)], 3 * u);
    }

    #[test]
    fn interleaving_mixes_forms() {
        let isa = synth::synthetic_x86();
        let b = LoopBuilder::new(&isa).body_len(10);
        let e = Experiment::from_counts(&[(InstId(0), 2), (InstId(1), 2)]);
        let k = b.build(&e);
        // Round-robin: the first two instructions are distinct forms.
        assert_ne!(k.insts()[0].inst, k.insts()[1].inst);
    }

    #[test]
    #[should_panic(expected = "empty experiment")]
    fn empty_experiment_panics() {
        let isa = synth::synthetic_x86();
        LoopBuilder::new(&isa).build(&Experiment::from_counts(&[]));
    }

    #[test]
    fn no_short_range_raw_dependencies_in_default_kernels() {
        // The whole point of §4.2: consecutive instructions never read a
        // register written by the immediately preceding instruction.
        let isa = synth::synthetic_x86();
        let b = LoopBuilder::new(&isa);
        let e = Experiment::from_counts(&[(InstId(0), 1), (InstId(10), 1), (InstId(20), 1)]);
        let k = b.build(&e);
        for w in k.insts().windows(2) {
            for r in &w[1].reads {
                // Base pointers are read-only; a write to them never occurs.
                assert!(
                    !w[0].writes.contains(r),
                    "adjacent RAW dependency through {r}"
                );
            }
        }
    }
}
