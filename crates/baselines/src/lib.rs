//! Baseline throughput predictors for the PMEvo evaluation (paper §5.3).
//!
//! The paper compares PMEvo's inferred mappings against four tools; each
//! has an analog here (see DESIGN.md for the substitution rationale):
//!
//! * [`oracle`] — the **uops.info**-style predictor: the machine's
//!   ground-truth port mapping evaluated under the optimal-scheduler
//!   bottleneck model. On real hardware uops.info is obtained through
//!   per-port performance counters; on a simulator the ground truth is
//!   simply known.
//! * [`IacaLike`] — the **IACA**-style predictor: ground-truth port
//!   usage *plus* a pipeline model (it runs the cycle-level simulator
//!   without noise), so it also captures non-optimal scheduling and
//!   front-end effects.
//! * [`mca_like`] — the **llvm-mca**-style predictor: a hand-maintained,
//!   systematically imperfect port-mapping model — decent for the
//!   SKL-like machine, coarse for ZEN/A72 (LLVM's scheduling models for
//!   those chips were immature, paper §5.3.2).
//! * [`IthemalLike`] — the **Ithemal**-style predictor: a regression
//!   model trained on dependency-heavy basic blocks, which therefore
//!   mispredicts dependency-free port-bound code (paper §5.3.1).

//!
//! Next to the *predictors*, the crate hosts the baseline *inference
//! algorithms* of the session API ([`CountingAlgorithm`],
//! [`RandomAlgorithm`], [`LpAlgorithm`]) — cheap
//! [`pmevo_core::InferenceAlgorithm`]s that PMEvo's evolutionary search
//! is compared against under identical backends and bookkeeping.

mod algorithms;
mod ithemal;
mod mca;

pub use algorithms::{CountingAlgorithm, LpAlgorithm, RandomAlgorithm};
pub use ithemal::{IthemalConfig, IthemalLike};
pub use mca::mca_like;

use pmevo_core::{Experiment, MappingPredictor, ThroughputPredictor};
use pmevo_isa::LoopBuilder;
use pmevo_machine::{simulate_kernel, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The uops.info-style oracle: the platform's ground-truth mapping under
/// the bottleneck model.
///
/// # Example
///
/// ```
/// use pmevo_baselines::oracle;
/// use pmevo_core::{Experiment, InstId, ThroughputPredictor};
/// use pmevo_machine::platforms;
///
/// let skl = platforms::skl();
/// let o = oracle(&skl);
/// assert!(o.predict(&Experiment::singleton(InstId(0))) > 0.0);
/// assert_eq!(o.name(), "uops.info");
/// ```
pub fn oracle(platform: &Platform) -> MappingPredictor {
    MappingPredictor::new("uops.info", platform.ground_truth().clone())
}

/// The oracle with `num_bugs` seeded decomposition errors — the paper
/// found (and fixed) two bugs in the published uops.info Skylake mapping
/// (§5.2); this knob reproduces the "before fixing" state for
/// sensitivity studies.
pub fn oracle_with_bugs(platform: &Platform, num_bugs: usize, seed: u64) -> MappingPredictor {
    let mut mapping = platform.ground_truth().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = mapping.num_insts();
    for _ in 0..num_bugs {
        let inst = pmevo_core::InstId(rng.gen_range(0..n as u32));
        let mut entries = mapping.decomposition(inst).to_vec();
        if let Some(first) = entries.first_mut() {
            // A typical documentation bug: one µop too many.
            first.count += 1;
        }
        mapping.set_decomposition(inst, entries);
    }
    MappingPredictor::new("uops.info(buggy)", mapping)
}

/// The IACA-style predictor: ground truth + pipeline model.
///
/// Prediction runs the noise-free cycle-level simulator on the unrolled
/// measurement loop, so scheduling imperfections and front-end limits are
/// part of the prediction — like IACA's pipeline simulation, and unlike
/// the pure LP model (this is why IACA tracks long experiments better in
/// paper Figure 6).
#[derive(Debug)]
pub struct IacaLike<'a> {
    platform: &'a Platform,
    body_len: usize,
}

impl<'a> IacaLike<'a> {
    /// Creates the predictor for `platform`.
    pub fn new(platform: &'a Platform) -> Self {
        IacaLike {
            platform,
            body_len: 50,
        }
    }
}

impl ThroughputPredictor for IacaLike<'_> {
    fn predict(&self, e: &Experiment) -> f64 {
        let kernel = LoopBuilder::new(self.platform.isa())
            .body_len(self.body_len)
            .build(e);
        simulate_kernel(self.platform, &kernel, 10, 50).cycles_per_instance
    }

    fn name(&self) -> &str {
        "IACA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::InstId;
    use pmevo_machine::platforms;

    #[test]
    fn oracle_matches_ground_truth_model() {
        let p = platforms::skl();
        let o = oracle(&p);
        let e = Experiment::pair(InstId(0), 1, InstId(100), 1);
        assert_eq!(o.predict(&e), p.ground_truth().throughput(&e));
    }

    #[test]
    fn buggy_oracle_differs_but_not_everywhere() {
        let p = platforms::skl();
        let clean = oracle(&p);
        let buggy = oracle_with_bugs(&p, 2, 42);
        let mut diffs = 0;
        for i in 0..p.isa().len() as u32 {
            let e = Experiment::singleton(InstId(i));
            if (clean.predict(&e) - buggy.predict(&e)).abs() > 1e-12 {
                diffs += 1;
            }
        }
        assert!((1..=4).contains(&diffs), "{diffs} singleton diffs");
    }

    #[test]
    fn iaca_like_is_close_to_oracle_on_simple_experiments() {
        let p = platforms::skl();
        let o = oracle(&p);
        let iaca = IacaLike::new(&p);
        let mul = p.isa().find("imul_r64_r64").unwrap();
        let e = Experiment::singleton(mul);
        let a = o.predict(&e);
        let b = iaca.predict(&e);
        assert!((a - b).abs() / a < 0.15, "oracle {a} vs iaca {b}");
        assert_eq!(iaca.name(), "IACA");
    }
}
