//! The Ithemal-style baseline: a learned throughput regressor.
//!
//! Ithemal (Mendis et al., ICML 2019) trains an LSTM on basic blocks
//! extracted from compiled programs — blocks full of data dependencies.
//! The paper observes (§5.3.1) that such a model transfers poorly to
//! PMEvo's dependency-free, port-bound experiments (60.6 % MAPE, PCC
//! 0.35).
//!
//! The mechanism, not the architecture, is what matters for the
//! reproduction: we train a least-squares linear regressor over
//! per-(class, width) instruction counts on *dependency-heavy* blocks
//! produced by running the simulator on kernels with a tiny register
//! file (which forces short dependence chains, like compiler output).
//! Evaluated on dependency-free experiments, it inherits Ithemal's bias.

use pmevo_core::{Experiment, InstId, ThroughputPredictor};
use pmevo_isa::{LoopBuilder, OpClass};
use pmevo_machine::{simulate_kernel, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training configuration for [`IthemalLike`].
#[derive(Debug, Clone, PartialEq)]
pub struct IthemalConfig {
    /// Number of training basic blocks.
    pub training_blocks: usize,
    /// Smallest training block size (inclusive).
    pub min_block: u32,
    /// Largest training block size (inclusive); sizes vary so that the
    /// regressor sees blocks of different lengths, as Ithemal's training
    /// corpus does.
    pub max_block: u32,
    /// Registers per class in the training kernels — small values force
    /// the dependency chains that compiler-emitted code exhibits.
    pub training_registers: usize,
    /// Ridge regularization strength for the normal equations.
    pub ridge: f64,
    /// RNG seed for block sampling.
    pub seed: u64,
}

impl Default for IthemalConfig {
    fn default() -> Self {
        IthemalConfig {
            training_blocks: 400,
            min_block: 2,
            max_block: 10,
            training_registers: 4,
            ridge: 1e-3,
            seed: 0x17EA,
        }
    }
}

/// A linear throughput model over per-(class, width) instruction counts,
/// trained on dependency-heavy blocks.
#[derive(Debug, Clone)]
pub struct IthemalLike {
    /// Feature index per instruction id.
    feature_of: Vec<usize>,
    /// Learned weights (one per feature, plus intercept last).
    weights: Vec<f64>,
}

/// Feature index of a form: its (class, coarse width) bucket.
fn feature_key(class: OpClass, width_bits: u32) -> usize {
    let c = OpClass::ALL
        .iter()
        .position(|&x| x == class)
        .expect("class in ALL");
    let w = usize::from(width_bits >= 256);
    c * 2 + w
}

const NUM_FEATURES: usize = 28; // 14 classes × 2 width buckets

impl IthemalLike {
    /// Trains the regressor on `platform`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero training blocks.
    pub fn train(platform: &Platform, config: &IthemalConfig) -> Self {
        assert!(config.training_blocks > 0, "no training data requested");
        assert!(
            config.min_block >= 1 && config.min_block < config.max_block,
            "need a non-degenerate block size range"
        );
        let isa = platform.isa();
        let feature_of: Vec<usize> = isa
            .forms()
            .iter()
            .map(|f| feature_key(f.class, f.max_width_bits()))
            .collect();

        let dim = NUM_FEATURES + 1; // + intercept
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut xtx = vec![0.0f64; dim * dim];
        let mut xty = vec![0.0f64; dim];

        for _ in 0..config.training_blocks {
            // A "compiled basic block": random instructions, executed on
            // a tiny register file so dependencies dominate.
            let block_size = rng.gen_range(config.min_block..=config.max_block);
            let counts: Vec<(InstId, u32)> = (0..block_size)
                .map(|_| (InstId(rng.gen_range(0..isa.len() as u32)), 1))
                .collect();
            let e = Experiment::from_counts(&counts);
            let kernel = LoopBuilder::new(isa)
                .body_len(25)
                .register_file(config.training_registers, config.training_registers)
                .build(&e);
            let label = simulate_kernel(platform, &kernel, 5, 30).cycles_per_instance;

            let mut x = vec![0.0f64; dim];
            for (i, n) in e.iter() {
                x[feature_of[i.index()]] += f64::from(n);
            }
            x[dim - 1] = 1.0; // intercept
            for a in 0..dim {
                for b in 0..dim {
                    xtx[a * dim + b] += x[a] * x[b];
                }
                xty[a] += x[a] * label;
            }
        }
        for a in 0..dim {
            xtx[a * dim + a] += config.ridge;
        }
        let weights = solve_linear_system(&mut xtx, &mut xty, dim);
        IthemalLike {
            feature_of,
            weights,
        }
    }

    /// The learned weight vector (features, then intercept).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl ThroughputPredictor for IthemalLike {
    fn predict(&self, e: &Experiment) -> f64 {
        let dim = self.weights.len();
        let mut acc = self.weights[dim - 1]; // intercept
        for (i, n) in e.iter() {
            acc += self.weights[self.feature_of[i.index()]] * f64::from(n);
        }
        acc.max(0.05) // throughputs are positive
    }

    fn name(&self) -> &str {
        "Ithemal"
    }
}

/// Solves `A x = b` in place by Gaussian elimination with partial
/// pivoting; `a` is row-major `n × n`.
///
/// # Panics
///
/// Panics if the system is numerically singular (cannot happen with the
/// ridge term).
fn solve_linear_system(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1 * n + col]
                    .abs()
                    .partial_cmp(&a[r2 * n + col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty column range");
        assert!(
            a[pivot_row * n + col].abs() > 1e-12,
            "singular normal equations"
        );
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let inv = 1.0 / a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_machine::platforms;

    #[test]
    fn gaussian_elimination_solves_small_systems() {
        // [2 1; 1 3] x = [5; 10] => x = [1, 3]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        let x = solve_linear_system(&mut a, &mut b, 2);
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn training_produces_finite_weights() {
        let p = platforms::skl();
        let model = IthemalLike::train(
            &p,
            &IthemalConfig {
                training_blocks: 60,
                ..IthemalConfig::default()
            },
        );
        assert_eq!(model.weights().len(), NUM_FEATURES + 1);
        assert!(model.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn predictions_are_positive_and_grow_with_block_size() {
        let p = platforms::skl();
        let model = IthemalLike::train(
            &p,
            &IthemalConfig {
                training_blocks: 80,
                ..IthemalConfig::default()
            },
        );
        let small = Experiment::from_counts(&[(InstId(0), 1)]);
        let big = Experiment::from_counts(&[(InstId(0), 8)]);
        let ts = model.predict(&small);
        let tb = model.predict(&big);
        assert!(ts > 0.0);
        assert!(tb > ts, "more instructions must predict more cycles");
        assert_eq!(model.name(), "Ithemal");
    }
}
