//! The llvm-mca-style baseline: a hand-maintained port-mapping model.
//!
//! llvm-mca predicts from LLVM's scheduling models, which are carefully
//! tuned for mainstream Intel chips but were coarse for AMD Zen+ and ARM
//! Cortex-A72 at the paper's time — the paper measures 9.7 % MAPE on SKL
//! versus 50.8 % / 65.3 % with systematic throughput *over-estimation* on
//! ZEN / A72 (Table 3/4, Figure 7).
//!
//! We reproduce that structure: the SKL model deviates from the ground
//! truth only in small ways, while the ZEN and A72 models make the
//! classic scheduling-model mistakes — too-narrow port groups, ignored
//! µop splitting, no double-pumping of 256-bit operations — which inflate
//! predicted cycle counts.

use pmevo_core::{MappingPredictor, PortSet, ThreeLevelMapping, UopEntry};
use pmevo_isa::{InstructionForm, OpClass};
use pmevo_machine::Platform;

fn ps(ports: &[usize]) -> PortSet {
    PortSet::from_ports(ports)
}

fn u(count: u32, ports: PortSet) -> UopEntry {
    UopEntry::new(count, ports)
}

/// SKL scheduling model: near-correct, with the small deviations typical
/// of a hand-maintained model (BTx family modeled as a single µop, the
/// divider pipe merged into port 0).
fn skl_model(f: &InstructionForm) -> Vec<UopEntry> {
    use OpClass::*;
    let mem_read = f
        .operands
        .iter()
        .any(|o| matches!(o, pmevo_isa::OperandKind::Mem { access, .. } if access.is_read()));
    let mut uops = match f.class {
        IntAlu => vec![u(1, ps(&[0, 1, 5, 6]))],
        Shift => vec![u(1, ps(&[0, 6]))],
        Lea => vec![u(1, ps(&[1, 5]))],
        IntMul => vec![u(1, ps(&[1]))],
        IntDiv => vec![u(1, ps(&[0])), u(6, ps(&[8]))],
        BitTest => vec![u(1, ps(&[0, 6]))], // deviation: BTx as one µop
        CondMove => vec![u(1, ps(&[0, 6]))],
        VecAlu => vec![u(1, ps(&[0, 1, 5]))],
        VecMul => vec![u(1, ps(&[0, 1]))],
        VecDiv => vec![u(1, ps(&[0])), u(4, ps(&[8]))],
        Shuffle => vec![u(1, ps(&[5]))],
        Convert => vec![u(1, ps(&[1])), u(1, ps(&[5]))],
        Load => vec![u(1, ps(&[2, 3]))],
        Store => vec![u(1, ps(&[4])), u(1, ps(&[2, 3, 7]))],
    };
    if mem_read && f.class != Load {
        uops.push(u(1, ps(&[2, 3])));
    }
    uops
}

/// ZEN scheduling model: the immature-model mistakes — integer ALUs
/// modeled on two ports instead of four, a single load pipe, no
/// double-pumped 256-bit handling, vector pipes over-merged.
fn zen_model(f: &InstructionForm) -> Vec<UopEntry> {
    use OpClass::*;
    let mem_read = f
        .operands
        .iter()
        .any(|o| matches!(o, pmevo_isa::OperandKind::Mem { access, .. } if access.is_read()));
    let mut uops = match f.class {
        IntAlu => vec![u(1, ps(&[0, 1]))], // reality: 4 ALU ports
        Shift => vec![u(1, ps(&[1]))],
        Lea => vec![u(1, ps(&[0, 1]))],
        IntMul => vec![u(1, ps(&[3]))],
        IntDiv => vec![u(16, ps(&[3]))], // over-estimates the divider
        BitTest => vec![u(1, ps(&[1]))],
        CondMove => vec![u(1, ps(&[0, 1]))],
        VecAlu => vec![u(1, ps(&[7]))], // reality: 3 vector pipes
        VecMul => vec![u(1, ps(&[7]))],
        VecDiv => vec![u(8, ps(&[7]))],
        Shuffle => vec![u(1, ps(&[7]))],
        Convert => vec![u(2, ps(&[7]))],
        Load => vec![u(1, ps(&[4]))], // reality: 2 load pipes
        Store => vec![u(1, ps(&[6]))],
    };
    if mem_read && f.class != Load {
        uops.push(u(1, ps(&[4])));
    }
    uops
}

/// A72 scheduling model: similar coarseness — one modeled integer port,
/// one modeled NEON port, shifted-operand forms not specialized.
fn a72_model(f: &InstructionForm) -> Vec<UopEntry> {
    use OpClass::*;
    let mem_read = f
        .operands
        .iter()
        .any(|o| matches!(o, pmevo_isa::OperandKind::Mem { access, .. } if access.is_read()));
    let mut uops = match f.class {
        IntAlu => vec![u(1, ps(&[0]))], // reality: 2 ALU ports
        Shift => vec![u(1, ps(&[0]))],
        Lea => vec![u(1, ps(&[0]))],
        BitTest => vec![u(1, ps(&[0]))],
        IntMul => vec![u(1, ps(&[2]))],
        IntDiv => vec![u(14, ps(&[2]))],
        CondMove => vec![u(1, ps(&[0]))],
        VecAlu => vec![u(1, ps(&[3]))], // reality: 2 NEON pipes
        VecMul => vec![u(1, ps(&[3]))],
        VecDiv => vec![u(8, ps(&[3]))],
        Shuffle => vec![u(1, ps(&[3]))],
        Convert => vec![u(1, ps(&[3]))],
        Load => vec![u(1, ps(&[5]))],
        Store => vec![u(1, ps(&[6]))],
    };
    if mem_read && f.class != Load {
        uops.push(u(1, ps(&[5])));
    }
    uops
}

/// Builds the llvm-mca-style predictor for one of the built-in
/// platforms.
///
/// # Panics
///
/// Panics if the platform is not one of `"SKL"`, `"ZEN"`, `"A72"`.
pub fn mca_like(platform: &Platform) -> MappingPredictor {
    let model: fn(&InstructionForm) -> Vec<UopEntry> = match platform.name() {
        "SKL" => skl_model,
        "ZEN" => zen_model,
        "A72" => a72_model,
        other => panic!("no llvm-mca model for platform {other}"),
    };
    let decomp = platform.isa().forms().iter().map(model).collect();
    let mapping = ThreeLevelMapping::new(platform.num_ports(), decomp);
    MappingPredictor::new("llvm-mca", mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{Experiment, InstId, ThroughputPredictor};
    use pmevo_machine::platforms;

    #[test]
    fn mca_covers_all_platforms() {
        for p in [platforms::skl(), platforms::zen(), platforms::a72()] {
            let m = mca_like(&p);
            assert_eq!(m.name(), "llvm-mca");
            assert_eq!(m.mapping().num_insts(), p.isa().len());
        }
    }

    #[test]
    fn mca_is_accurate_on_skl_but_overestimates_on_zen() {
        let skl = platforms::skl();
        let zen = platforms::zen();
        let mca_skl = mca_like(&skl);
        let mca_zen = mca_like(&zen);
        // Compare against ground-truth model on basic ALU experiments.
        let mut skl_err = 0.0;
        let mut zen_over = 0usize;
        let mut n = 0usize;
        for i in (0..60u32).step_by(3) {
            let e = Experiment::singleton(InstId(i));
            let t_skl = skl.ground_truth().throughput(&e);
            skl_err += (mca_skl.predict(&e) - t_skl).abs() / t_skl;
            let t_zen = zen.ground_truth().throughput(&e);
            if mca_zen.predict(&e) > t_zen * 1.2 {
                zen_over += 1;
            }
            n += 1;
        }
        assert!(skl_err / n as f64 <= 0.25, "SKL model too wrong");
        assert!(
            zen_over * 2 >= n,
            "expected systematic ZEN over-estimation ({zen_over}/{n})"
        );
    }

    #[test]
    #[should_panic(expected = "no llvm-mca model")]
    fn unknown_platform_panics() {
        let skl = platforms::skl();
        let custom = pmevo_machine::Platform::new(
            "CUSTOM",
            skl.info().clone(),
            skl.isa().clone(),
            skl.ground_truth().clone(),
            skl.isa()
                .ids()
                .map(|i| skl.exec_params(i))
                .collect(),
            4,
            97,
        );
        mca_like(&custom);
    }
}
