//! Baseline [`InferenceAlgorithm`]s: the cheap reference points PMEvo's
//! evolutionary inference is compared against in the session API.
//!
//! * [`CountingAlgorithm`] — the front-end-style model: every
//!   instruction gets `round(t*(i) · |P|)` fully-flexible µops, so its
//!   singleton throughput is reproduced but no port structure is
//!   learned. Uses only the `|ISA|` singleton measurements.
//! * [`RandomAlgorithm`] — PMEvo's population initializer without any
//!   search: one random throughput-bounded mapping. The ablation floor.
//! * [`LpAlgorithm`] — least-absolute-deviations regression through the
//!   `pmevo-lp` simplex solver: fits additive per-instruction costs to
//!   singleton (and optionally pair) measurements, then materializes
//!   them as fully-flexible µops. The "linear model" baseline — what a
//!   Gurobi user would try before reaching for evolution.
//!
//! All three produce an [`InferredMapping`] with the same bookkeeping as
//! the evolutionary pipeline, so `Session` reports stay comparable.

use pmevo_core::{
    Experiment, InferenceAlgorithm, InferredMapping, InstId, MeasuredExperiment,
    MeasurementBackend, PortSet, ThreeLevelMapping, UopEntry,
};
use pmevo_lp::Problem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Builds the decomposition "`n` fully-flexible µops" with
/// `n = max(1, round(cost · num_ports))`, whose optimal-scheduler
/// singleton throughput is `n / num_ports ≈ cost`.
fn flexible_decomposition(cost: f64, num_ports: usize) -> Vec<UopEntry> {
    let n = (cost * num_ports as f64).round().max(1.0) as u32;
    vec![UopEntry::new(n, PortSet::first_n(num_ports))]
}

/// Measures the singleton experiments of the universe.
fn measure_singletons(
    num_insts: usize,
    backend: &mut dyn MeasurementBackend,
) -> (Vec<Experiment>, Vec<f64>) {
    let singletons: Vec<Experiment> = (0..num_insts as u32)
        .map(|i| Experiment::singleton(InstId(i)))
        .collect();
    let tp = backend.measure_batch_checked(&singletons);
    (singletons, tp)
}

/// Average relative error of `mapping` on `experiments` (the `D_avg` of
/// paper §4.4, computed through the core model).
fn training_error(mapping: &ThreeLevelMapping, experiments: &[MeasuredExperiment]) -> f64 {
    let sum: f64 = experiments
        .iter()
        .map(|me| (mapping.throughput(&me.experiment) - me.throughput).abs() / me.throughput)
        .sum();
    sum / experiments.len() as f64
}

fn bookkeeping(
    algorithm: &dyn InferenceAlgorithm,
    mapping: ThreeLevelMapping,
    experiments: &[MeasuredExperiment],
    stats_delta: pmevo_core::BackendStats,
    infer_start: Instant,
) -> InferredMapping {
    let error = training_error(&mapping, experiments);
    // Baselines measure their whole corpus up front: one round.
    let rounds = vec![pmevo_core::RoundStats::from_delta(
        0,
        &stats_delta,
        stats_delta.measurements_performed,
        error,
    )];
    InferredMapping {
        algorithm: algorithm.name().to_owned(),
        num_experiments: experiments.len(),
        measurements_performed: stats_delta.measurements_performed,
        benchmarking_time: stats_delta.measurement_time,
        inference_time: infer_start.elapsed() - stats_delta.measurement_time,
        congruent_fraction: 0.0,
        num_classes: mapping.num_insts(),
        training_error: Some(error),
        rounds,
        round_mappings: vec![mapping.clone()],
        mapping,
    }
}

/// The counting baseline: per-instruction µop counts from singleton
/// throughputs, no port structure.
///
/// # Example
///
/// ```
/// use pmevo_baselines::CountingAlgorithm;
/// use pmevo_core::{InferenceAlgorithm, ModelBackend, PortSet, ThreeLevelMapping, UopEntry};
///
/// let gt = ThreeLevelMapping::new(2, vec![vec![UopEntry::new(2, PortSet::from_ports(&[0]))]]);
/// let inferred = CountingAlgorithm.infer(1, 2, &mut ModelBackend::new(gt));
/// // Singleton throughput 2.0 on a 2-port machine -> 4 flexible µops.
/// assert_eq!(inferred.mapping.num_uops_of(pmevo_core::InstId(0)), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingAlgorithm;

impl InferenceAlgorithm for CountingAlgorithm {
    fn name(&self) -> &str {
        "counting"
    }

    fn infer(
        &self,
        num_insts: usize,
        num_ports: usize,
        backend: &mut dyn MeasurementBackend,
    ) -> InferredMapping {
        assert!(num_insts > 0, "empty instruction universe");
        let start = Instant::now();
        let before = backend.stats();
        let (singletons, tp) = measure_singletons(num_insts, backend);
        let stats_delta = backend.stats().since(&before);
        let decomp = tp
            .iter()
            .map(|&t| flexible_decomposition(t, num_ports))
            .collect();
        let mapping = ThreeLevelMapping::new(num_ports, decomp);
        let measured: Vec<MeasuredExperiment> = singletons
            .into_iter()
            .zip(tp)
            .map(|(e, t)| MeasuredExperiment::new(e, t))
            .collect();
        bookkeeping(self, mapping, &measured, stats_delta, start)
    }
}

/// The random baseline: one sample of PMEvo's population initializer
/// (paper §4.4), bounded by the measured singleton throughputs but
/// otherwise unfitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomAlgorithm {
    /// RNG seed for the sampled mapping.
    pub seed: u64,
}

impl RandomAlgorithm {
    /// Creates the baseline with the given sampling seed.
    pub fn new(seed: u64) -> Self {
        RandomAlgorithm { seed }
    }
}

impl InferenceAlgorithm for RandomAlgorithm {
    fn name(&self) -> &str {
        "random"
    }

    fn infer(
        &self,
        num_insts: usize,
        num_ports: usize,
        backend: &mut dyn MeasurementBackend,
    ) -> InferredMapping {
        assert!(num_insts > 0, "empty instruction universe");
        let start = Instant::now();
        let before = backend.stats();
        let (singletons, tp) = measure_singletons(num_insts, backend);
        let stats_delta = backend.stats().since(&before);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mapping = ThreeLevelMapping::sample_random(&mut rng, num_insts, num_ports, &tp);
        let measured: Vec<MeasuredExperiment> = singletons
            .into_iter()
            .zip(tp)
            .map(|(e, t)| MeasuredExperiment::new(e, t))
            .collect();
        bookkeeping(self, mapping, &measured, stats_delta, start)
    }
}

/// The LP-regression baseline: fit per-instruction additive costs `w_i`
/// minimizing `Σ_e |Σ_i c_ie·w_i − t_e|` (least absolute deviations,
/// linearized with split slack variables and solved by the `pmevo-lp`
/// two-phase simplex), then materialize each cost as fully-flexible
/// µops.
///
/// The additive model is exactly what a pure counting view of the
/// machine can express — the LP makes it the *best* such view over the
/// training set, including pair experiments where port contention shows
/// up. Pair experiments are only generated among the first
/// [`max_pair_insts`](Self::max_pair_insts) instructions, because the
/// dense simplex tableau grows quadratically with the experiment count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpAlgorithm {
    /// Pair experiments are generated for instruction ids below this
    /// bound (0 fits singletons only).
    pub max_pair_insts: usize,
}

impl Default for LpAlgorithm {
    fn default() -> Self {
        // 24 instructions -> 276 pair constraints: comfortably inside
        // the dense simplex's budget, enough to expose contention.
        LpAlgorithm { max_pair_insts: 24 }
    }
}

impl LpAlgorithm {
    /// Creates the baseline with an explicit pair-experiment bound.
    pub fn new(max_pair_insts: usize) -> Self {
        LpAlgorithm { max_pair_insts }
    }
}

impl InferenceAlgorithm for LpAlgorithm {
    fn name(&self) -> &str {
        "lp"
    }

    fn infer(
        &self,
        num_insts: usize,
        num_ports: usize,
        backend: &mut dyn MeasurementBackend,
    ) -> InferredMapping {
        assert!(num_insts > 0, "empty instruction universe");
        let start = Instant::now();
        let before = backend.stats();
        let (singletons, tp) = measure_singletons(num_insts, backend);
        let mut experiments: Vec<Experiment> = singletons;
        let bound = self.max_pair_insts.min(num_insts) as u32;
        for a in 0..bound {
            for b in (a + 1)..bound {
                experiments.push(Experiment::pair(InstId(a), 1, InstId(b), 1));
                experiments.push(Experiment::pair(InstId(a), 2, InstId(b), 1));
            }
        }
        let pair_tp = backend.measure_batch_checked(&experiments[tp.len()..]);
        let stats_delta = backend.stats().since(&before);
        let throughputs: Vec<f64> = tp.iter().copied().chain(pair_tp).collect();

        // Fit per-instruction costs w so that Σ_i c_ie·w_i tracks t_e in
        // the least-absolute-deviations sense.
        let rows: Vec<Vec<(usize, f64)>> = experiments
            .iter()
            .map(|exp| {
                exp.iter()
                    .map(|(i, n)| (i.0 as usize, f64::from(n)))
                    .collect()
            })
            .collect();
        let lp = Problem::least_absolute_deviations(num_insts, &rows, &throughputs);
        let solution = lp.solve().expect("LAD regression LP is feasible and bounded");

        let decomp = (0..num_insts)
            .map(|i| flexible_decomposition(solution.value(i), num_ports))
            .collect();
        let mapping = ThreeLevelMapping::new(num_ports, decomp);
        let measured: Vec<MeasuredExperiment> = experiments
            .into_iter()
            .zip(throughputs)
            .map(|(e, t)| MeasuredExperiment::new(e, t))
            .collect();
        bookkeeping(self, mapping, &measured, stats_delta, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::ModelBackend;

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    fn gt() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0])],
                vec![uop(1, &[0, 1])],
                vec![uop(2, &[2])],
                vec![uop(1, &[0, 1, 2])],
            ],
        )
    }

    #[test]
    fn counting_reproduces_singleton_throughputs() {
        let inferred = CountingAlgorithm.infer(4, 3, &mut ModelBackend::new(gt()));
        assert_eq!(inferred.algorithm, "counting");
        assert_eq!(inferred.num_experiments, 4);
        assert_eq!(inferred.measurements_performed, 4);
        for i in 0..4u32 {
            let e = Experiment::singleton(InstId(i));
            let want = gt().throughput(&e);
            let got = inferred.mapping.throughput(&e);
            assert!(
                (got - want).abs() <= 1.0 / 3.0 + 1e-12,
                "inst {i}: counting {got} vs ground truth {want}"
            );
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = RandomAlgorithm::new(3).infer(4, 3, &mut ModelBackend::new(gt()));
        let b = RandomAlgorithm::new(3).infer(4, 3, &mut ModelBackend::new(gt()));
        assert_eq!(a.mapping, b.mapping);
        assert_ne!(
            a.mapping,
            RandomAlgorithm::new(4).infer(4, 3, &mut ModelBackend::new(gt())).mapping,
        );
    }

    #[test]
    fn lp_with_singletons_only_recovers_singleton_costs() {
        // With singletons as the whole training set the LAD optimum is
        // w_i = t*(i) exactly (zero residual is attainable).
        let machine = ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0])],
                vec![uop(2, &[1])],
                vec![uop(3, &[2])],
            ],
        );
        let inferred = LpAlgorithm::new(0).infer(3, 3, &mut ModelBackend::new(machine));
        assert_eq!(inferred.num_experiments, 3);
        for i in 0..3u32 {
            let e = Experiment::singleton(InstId(i));
            let got = inferred.mapping.throughput(&e);
            // Ground-truth singleton throughputs are 1, 2, 3; the
            // flexible-µop materialization quantizes to thirds.
            let want = f64::from(i + 1);
            assert!(
                (got - want).abs() <= 1.0 / 3.0 + 1e-9,
                "inst {i}: lp {got} vs {want}"
            );
        }
    }

    #[test]
    fn lp_default_trains_on_pairs_too() {
        let inferred = LpAlgorithm::default().infer(4, 3, &mut ModelBackend::new(gt()));
        // 4 singletons + 2 experiments per unordered pair of 4 forms.
        assert_eq!(inferred.num_experiments, 4 + 2 * 6);
        assert!(inferred.training_error.unwrap().is_finite());
    }

    #[test]
    fn lp_beats_random_on_training_error() {
        let lp = LpAlgorithm::default().infer(4, 3, &mut ModelBackend::new(gt()));
        let rnd = RandomAlgorithm::new(1).infer(4, 3, &mut ModelBackend::new(gt()));
        // Not a theorem, but with this seed and ground truth the fitted
        // model must explain its training data better than a random one.
        assert!(lp.training_error.unwrap() < rnd.training_error.unwrap());
    }

    #[test]
    fn baselines_fill_uniform_bookkeeping() {
        let inferred = CountingAlgorithm.infer(4, 3, &mut ModelBackend::new(gt()));
        assert_eq!(inferred.congruent_fraction, 0.0);
        assert_eq!(inferred.num_classes, 4);
        assert!(inferred.training_error.is_some());
        assert!(inferred.num_distinct_uops() >= 1);
    }
}
