//! Shared harness for the reproduction binaries (one binary per paper
//! table/figure; see DESIGN.md §4 for the full experiment index).
//!
//! Everything here is deliberately boring plumbing: benchmark-set
//! sampling, backend-based measurement, predictor evaluation, the
//! shared CLI flags (`--seed`, `--platform`, `--algorithm`, …) every
//! binary understands, and the artifact cache that lets
//! `table3`/`table4`/`fig7` reuse the mappings inferred by `table2`
//! instead of re-running inference.
//!
//! Measurement and inference go through the session API: a
//! [`SimBackend`] per platform, [`pmevo::Session`] for inference runs,
//! and [`selected_algorithm`] to swap PMEvo for one of the baseline
//! [`InferenceAlgorithm`]s from the command line.

use pmevo::Session;
use pmevo_baselines::{CountingAlgorithm, LpAlgorithm, RandomAlgorithm};
use pmevo_core::{
    Experiment, InferenceAlgorithm, InstId, MeasuredExperiment, MeasurementBackend,
    MeasurementBudget, SelectionPolicy, ThreeLevelMapping, ThroughputPredictor,
};
use pmevo_evo::{EvoConfig, PipelineConfig, PmEvoAlgorithm};
use pmevo_machine::{MeasureConfig, Platform, SimBackend};
use pmevo_stats::AccuracySummary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// Samples `count` random instruction multisets of the given `size`
/// (uniformly over multisets, as in the paper's benchmark sets, §5.3).
pub fn sample_experiments(
    num_insts: usize,
    size: u32,
    count: usize,
    seed: u64,
) -> Vec<Experiment> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let counts: Vec<(InstId, u32)> = (0..size)
                .map(|_| (InstId(rng.gen_range(0..num_insts as u32)), 1))
                .collect();
            Experiment::from_counts(&counts)
        })
        .collect()
}

/// The default measurement backend for a platform: the cycle-level
/// simulator with the paper's noisy measurement harness, batches
/// chunked across all cores.
pub fn sim_backend(platform: &Platform) -> SimBackend {
    SimBackend::new(platform.clone(), MeasureConfig::default())
}

/// Measures a benchmark set through a backend and pairs experiments
/// with throughputs.
pub fn measure_benchmark_set(
    backend: &mut dyn MeasurementBackend,
    experiments: &[Experiment],
) -> Vec<MeasuredExperiment> {
    let tps = backend.measure_batch(experiments);
    experiments
        .iter()
        .cloned()
        .zip(tps)
        .map(|(e, t)| MeasuredExperiment::new(e, t))
        .collect()
}

/// Evaluates a predictor on a measured benchmark set.
pub fn evaluate_predictor(
    predictor: &dyn ThroughputPredictor,
    benchmark: &[MeasuredExperiment],
) -> (Vec<f64>, AccuracySummary) {
    let predictions: Vec<f64> = benchmark
        .iter()
        .map(|me| predictor.predict(&me.experiment))
        .collect();
    let measured: Vec<f64> = benchmark.iter().map(|me| me.throughput).collect();
    let summary = AccuracySummary::compute(&predictions, &measured);
    (predictions, summary)
}

/// The artifact directory (inferred mappings, heat-map CSVs).
pub fn artifact_dir() -> PathBuf {
    let dir = std::env::var_os("PMEVO_ARTIFACTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("artifacts"));
    std::fs::create_dir_all(&dir).expect("create artifact directory");
    dir
}

/// Default pipeline configuration for simulator-scale inference runs.
///
/// The paper ran with a population of 100 000 on real machines over
/// hours; the defaults here are sized so the whole reproduction suite
/// runs in minutes. `scale` multiplies the population size for
/// higher-fidelity runs (`--full` uses 10).
pub fn default_pipeline_config(scale: usize, seed: u64) -> PipelineConfig {
    PipelineConfig {
        epsilon: 0.05,
        congruence_filtering: true,
        extra_triples: 0,
        evo: EvoConfig {
            population_size: 300 * scale.max(1),
            max_generations: 50,
            seed,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// Builds the inference session the reproduction binaries run: the
/// selected algorithm over the platform's simulator backend.
/// `selection` and `budget` are recorded in the report (the explicit
/// algorithm must be configured to match — see [`selected_algorithm`]).
pub fn inference_session(
    platform: &Platform,
    algorithm: impl InferenceAlgorithm + Send + 'static,
    seed: u64,
    selection: SelectionPolicy,
    budget: MeasurementBudget,
) -> Session {
    Session::builder()
        .platform(platform.clone())
        .algorithm(algorithm)
        .seed(seed)
        .selection(selection)
        .budget(budget)
        .build()
        .expect("a platform-backed session configuration is always valid")
}

/// The artifact path of an inferred mapping, keyed by algorithm,
/// selection policy, platform and scale — so a baseline run can never
/// masquerade as the PMEvo mapping, and an adaptive (budget-capped) run
/// can never poison the one-shot cache that `table3`/`table4`/`fig7`
/// consume.
pub fn mapping_artifact_path(
    algorithm: &str,
    selection: SelectionPolicy,
    platform: &Platform,
    scale: usize,
) -> PathBuf {
    artifact_dir().join(format!(
        "{}_{}_{}_x{scale}.json",
        algorithm.to_lowercase(),
        selection.slug(),
        platform.name().to_lowercase()
    ))
}

/// Infers a PMEvo mapping for `platform`, caching the result as JSON in
/// the artifact directory (keyed by algorithm, the one-shot selection
/// policy, platform name and scale).
///
/// # Panics
///
/// Panics on I/O or serialization failures, or if inference produces an
/// inconsistent mapping.
pub fn pmevo_mapping_cached(platform: &Platform, scale: usize, seed: u64) -> ThreeLevelMapping {
    let path = mapping_artifact_path("pmevo", SelectionPolicy::OneShot, platform, scale);
    if let Some(m) = load_mapping(&path, platform) {
        return m;
    }
    eprintln!(
        "[pmevo-bench] no cached mapping at {}; running inference (use `table2` to pre-compute)",
        path.display()
    );
    let algorithm = PmEvoAlgorithm::new(default_pipeline_config(scale, seed));
    let report = inference_session(
        platform,
        algorithm,
        seed,
        SelectionPolicy::OneShot,
        MeasurementBudget::UNLIMITED,
    )
    .run();
    save_mapping(&path, &report.mapping);
    report.mapping
}

/// Loads a cached mapping if present and shape-compatible.
pub fn load_mapping(path: &Path, platform: &Platform) -> Option<ThreeLevelMapping> {
    let data = std::fs::read_to_string(path).ok()?;
    let mapping = ThreeLevelMapping::from_json(&data).ok()?;
    (mapping.num_insts() == platform.isa().len()
        && mapping.num_ports() == platform.num_ports())
    .then_some(mapping)
}

/// Saves a mapping as pretty JSON.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn save_mapping(path: &Path, mapping: &ThreeLevelMapping) {
    let json = mapping.to_json_pretty();
    std::fs::write(path, json).expect("write mapping artifact");
}

/// A minimal `--flag value` / `--switch` parser for the reproduction
/// binaries.
///
/// # Example
///
/// ```
/// use pmevo_bench::Args;
///
/// let args = Args::parse_from(["--n", "100", "--full"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get_usize("n", 5), 100);
/// assert!(args.has("full"));
/// assert_eq!(args.seed(7), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses the process's CLI arguments.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (for tests).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut pairs = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next(),
                    _ => None,
                };
                pairs.push((name.to_string(), value));
            } else {
                eprintln!("[pmevo-bench] ignoring stray argument {a:?}");
            }
        }
        Args { pairs }
    }

    /// Whether `--name` was given (with or without value).
    pub fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    /// The value of `--name` as `usize`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get_str(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}")))
            .unwrap_or(default)
    }

    /// The value of `--name` as `u64`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get_str(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}")))
            .unwrap_or(default)
    }

    /// The shared `--seed` flag, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn seed(&self, default: u64) -> u64 {
        self.get_u64("seed", default)
    }

    /// The raw value of `--name`, if given.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

/// Resolves the platforms selected by the shared `--platform NAME` flag
/// (default: the three paper platforms; `TINY` is opt-in).
///
/// # Panics
///
/// Panics on an unknown platform name.
pub fn selected_platforms(args: &Args) -> Vec<Platform> {
    use pmevo_machine::platforms;
    match args.get_str("platform") {
        None => vec![platforms::skl(), platforms::zen(), platforms::a72()],
        Some(name) => match name.to_uppercase().as_str() {
            "SKL" => vec![platforms::skl()],
            "ZEN" => vec![platforms::zen()],
            "A72" => vec![platforms::a72()],
            "TINY" => vec![platforms::tiny()],
            other => panic!("unknown platform {other}; expected SKL, ZEN, A72 or TINY"),
        },
    }
}

/// Resolves the shared experiment-selection flags: `--selection
/// one-shot|disagreement|uniform` (default `one-shot`) with `--top-k N`
/// (default 16, clamped to at least 1) for the round-based policies.
///
/// # Panics
///
/// Panics on an unknown policy name or a non-numeric `--top-k`.
pub fn selected_selection(args: &Args) -> SelectionPolicy {
    let top_k = args.get_usize("top-k", 16).max(1);
    match args.get_str("selection").unwrap_or("one-shot") {
        "one-shot" => SelectionPolicy::OneShot,
        "disagreement" => SelectionPolicy::Disagreement { top_k },
        "uniform" => SelectionPolicy::Uniform { top_k },
        other => panic!("unknown selection policy {other}; expected one-shot, disagreement or uniform"),
    }
}

/// Resolves the shared `--budget N` flag (maximum real measurements)
/// into a [`MeasurementBudget`]; absent or 0 means unlimited.
///
/// # Panics
///
/// Panics if the value does not parse.
pub fn selected_budget(args: &Args) -> MeasurementBudget {
    match args.get_u64("budget", 0) {
        0 => MeasurementBudget::UNLIMITED,
        n => MeasurementBudget::measurements(n),
    }
}

/// Resolves the shared `--algorithm NAME` flag into an
/// [`InferenceAlgorithm`] (default: `pmevo`). `scale` and `seed` only
/// affect the algorithms that use them; the shared
/// `--selection`/`--budget`/`--top-k` flags only affect PMEvo.
///
/// # Panics
///
/// Panics on an unknown algorithm name.
pub fn selected_algorithm(
    args: &Args,
    scale: usize,
    seed: u64,
) -> Box<dyn InferenceAlgorithm + Send> {
    match args.get_str("algorithm").unwrap_or("pmevo") {
        "pmevo" => {
            let mut config = default_pipeline_config(scale, seed);
            config.selection = selected_selection(args);
            config.budget = selected_budget(args);
            Box::new(PmEvoAlgorithm::new(config))
        }
        "counting" => Box::new(CountingAlgorithm),
        "random" => Box::new(RandomAlgorithm::new(seed)),
        "lp" => Box::new(LpAlgorithm::default()),
        other => panic!("unknown algorithm {other}; expected pmevo, counting, random or lp"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_machine::platforms;

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let a = sample_experiments(50, 5, 10, 1);
        let b = sample_experiments(50, 5, 10, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|e| e.total_insts() == 5));
        assert_ne!(a, sample_experiments(50, 5, 10, 2));
    }

    #[test]
    fn backend_measurement_pairs_experiments_in_order() {
        let p = platforms::skl();
        let exps = sample_experiments(p.isa().len(), 3, 6, 3);
        let mut backend = SimBackend::new(p.clone(), MeasureConfig::exact());
        let benchmark = measure_benchmark_set(&mut backend, &exps);
        assert_eq!(benchmark.len(), exps.len());
        let measurer = pmevo_machine::Measurer::new(&p, MeasureConfig::exact());
        for (me, e) in benchmark.iter().zip(&exps) {
            assert_eq!(&me.experiment, e);
            assert_eq!(me.throughput, measurer.measure(e));
        }
    }

    #[test]
    fn args_parser_handles_flags_and_values() {
        let args = Args::parse_from(
            ["--n", "42", "--full", "--platform", "zen", "--seed", "9"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_usize("n", 0), 42);
        assert!(args.has("full"));
        assert_eq!(args.seed(0), 9);
        assert_eq!(args.get_str("platform"), Some("zen"));
        assert_eq!(selected_platforms(&args)[0].name(), "ZEN");
        assert_eq!(selected_platforms(&Args::default()).len(), 3);
    }

    #[test]
    fn algorithm_flag_selects_each_implementation() {
        for (flag, name) in [
            ("pmevo", "PMEvo"),
            ("counting", "counting"),
            ("random", "random"),
            ("lp", "lp"),
        ] {
            let args = Args::parse_from(["--algorithm", flag].iter().map(|s| s.to_string()));
            assert_eq!(selected_algorithm(&args, 1, 0).name(), name);
        }
        assert_eq!(selected_algorithm(&Args::default(), 1, 0).name(), "PMEvo");
    }

    #[test]
    fn mapping_cache_roundtrip() {
        let p = platforms::a72();
        let dir = std::env::temp_dir().join("pmevo-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        save_mapping(&path, p.ground_truth());
        let m = load_mapping(&path, &p).expect("roundtrip");
        assert_eq!(&m, p.ground_truth());
        // Mismatched platform is rejected.
        assert!(load_mapping(&path, &platforms::skl()).is_none());
    }
}
