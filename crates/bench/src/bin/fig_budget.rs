//! Budget-vs-quality sweep for adaptive experiment selection: for each
//! measurement budget × selection policy, run PMEvo inference through
//! the [`pmevo::Session`] API and report how much was measured and what
//! accuracy it bought (training `D_avg`, held-out MAPE, and the
//! per-round accuracy trajectory).
//!
//! Usage: `cargo run --release -p pmevo-bench --bin fig_budget
//!         [--platform TINY|SKL|ZEN|A72] [--budgets 24,48] [--top-k 4]
//!         [--scale 1] [--seed 2] [--jobs 1] [--out BENCH_selection.json]`
//!
//! The default platform is TINY (the 6-form toy machine), sized so the
//! whole sweep runs in seconds — CI smoke-runs it twice and asserts the
//! emitted `BENCH_selection.json` is bit-identical. To keep that
//! possible the artifact contains **no wall-clock fields**: every value
//! is a deterministic function of the configuration and seed.

use pmevo::machine::platforms;
use pmevo::{Service, Session, SessionReport};
use pmevo_bench::{default_pipeline_config, selected_platforms, Args};
use pmevo_core::json::{self, Value};
use pmevo_core::{MeasurementBudget, SelectionPolicy};
use pmevo_evo::PmEvoAlgorithm;
use pmevo_machine::Platform;
use pmevo_stats::Table;

/// One sweep cell: a policy at a budget on a platform.
struct Cell {
    platform: Platform,
    selection: SelectionPolicy,
    budget: MeasurementBudget,
}

fn session_for(cell: &Cell, scale: usize, seed: u64) -> Session {
    let mut config = default_pipeline_config(scale, seed);
    config.selection = cell.selection;
    config.budget = cell.budget;
    Session::builder()
        .platform(cell.platform.clone())
        .algorithm(PmEvoAlgorithm::new(config))
        .seed(seed)
        .selection(cell.selection)
        .budget(cell.budget)
        .accuracy_benchmarks(96)
        .label(format!(
            "{}@{}@{}",
            cell.selection.slug(),
            cell.platform.name(),
            cell.budget
        ))
        .build()
        .expect("a platform-backed session configuration is always valid")
}

/// The deterministic slice of a report that goes into the artifact.
fn run_to_json(cell: &Cell, report: &SessionReport) -> Value {
    let budget = match cell.budget.max_measurements {
        None => Value::Null,
        Some(n) => Value::UInt(n),
    };
    let rounds = report
        .rounds
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("round".into(), Value::UInt(u64::from(r.round))),
                ("submitted".into(), Value::UInt(r.experiments_submitted)),
                ("performed".into(), Value::UInt(r.measurements_performed)),
                ("cumulative".into(), Value::UInt(r.cumulative_measurements)),
                ("training_error".into(), Value::Num(r.training_error)),
            ])
        })
        .collect();
    let trajectory = report
        .accuracy_trajectory
        .iter()
        .map(|&m| Value::Num(m))
        .collect();
    Value::Obj(vec![
        ("platform".into(), Value::Str(cell.platform.name().to_owned())),
        ("policy".into(), cell.selection.to_json_value()),
        ("budget".into(), budget),
        (
            "measurements_performed".into(),
            Value::UInt(report.measurements_performed),
        ),
        (
            "num_experiments".into(),
            Value::UInt(report.num_experiments as u64),
        ),
        (
            "training_error".into(),
            report
                .training_error
                .map(Value::Num)
                .unwrap_or(Value::Null),
        ),
        (
            "holdout_mape".into(),
            report
                .accuracy
                .as_ref()
                .map(|a| Value::Num(a.mape))
                .unwrap_or(Value::Null),
        ),
        ("rounds".into(), Value::Arr(rounds)),
        ("accuracy_trajectory".into(), Value::Arr(trajectory)),
    ])
}

fn main() {
    let args = Args::parse();
    let scale = args.get_usize("scale", 1);
    let seed = args.seed(2);
    let jobs = args.get_usize("jobs", 1);
    let top_k = args.get_usize("top-k", 4).max(1);
    let budgets: Vec<u64> = args
        .get_str("budgets")
        .unwrap_or("24,48")
        .split(',')
        .map(|b| b.trim().parse().expect("--budgets expects comma-separated integers"))
        .collect();
    let out = args.get_str("out").unwrap_or("BENCH_selection.json").to_owned();
    // Default to the toy machine: the sweep is quadratic in corpus size
    // and meant as a smoke-testable figure, not an overnight run.
    let platforms = if args.has("platform") {
        selected_platforms(&args)
    } else {
        vec![platforms::tiny()]
    };

    let mut cells: Vec<Cell> = Vec::new();
    for platform in &platforms {
        // One-shot measures its full corpus regardless of budget: one
        // reference cell per platform.
        cells.push(Cell {
            platform: platform.clone(),
            selection: SelectionPolicy::OneShot,
            budget: MeasurementBudget::UNLIMITED,
        });
        for &budget in &budgets {
            for selection in [
                SelectionPolicy::Disagreement { top_k },
                SelectionPolicy::Uniform { top_k },
            ] {
                cells.push(Cell {
                    platform: platform.clone(),
                    selection,
                    budget: MeasurementBudget::measurements(budget),
                });
            }
        }
    }

    println!(
        "fig_budget: measurement budget vs inference quality (top-k {top_k}, seed {seed})\n"
    );
    let sessions: Vec<Session> = cells.iter().map(|c| session_for(c, scale, seed)).collect();
    let reports = Service::new(jobs.max(1)).run_many(sessions);

    let mut table = Table::new(vec![
        "",
        "budget",
        "measurements",
        "rounds",
        "D_avg",
        "held-out MAPE",
    ]);
    let mut runs = Vec::with_capacity(cells.len());
    for (cell, report) in cells.iter().zip(&reports) {
        table.row(vec![
            format!("{}@{}", cell.selection.slug(), cell.platform.name()),
            cell.budget
                .max_measurements
                .map(|n| n.to_string())
                .unwrap_or_else(|| "∞".into()),
            report.measurements_performed.to_string(),
            report.rounds.len().to_string(),
            format!("{:.4}", report.training_error.unwrap_or(f64::NAN)),
            report
                .accuracy
                .as_ref()
                .map(|a| format!("{:.1}%", a.mape))
                .unwrap_or_else(|| "-".into()),
        ]);
        runs.push(run_to_json(cell, report));
    }
    println!("{table}");

    let artifact = Value::Obj(vec![
        ("seed".into(), Value::UInt(seed)),
        ("top_k".into(), Value::UInt(top_k as u64)),
        ("runs".into(), Value::Arr(runs)),
    ]);
    let text = json::write_pretty(&artifact);
    std::fs::write(&out, &text).expect("write BENCH_selection.json");

    // Self-check: the artifact must parse back and cover every cell —
    // CI reruns the binary and diffs the bytes, so fail loudly here
    // rather than emit something half-written.
    let parsed = json::parse(&text).expect("emitted artifact parses");
    let n = parsed
        .get("runs")
        .and_then(Value::as_arr)
        .expect("artifact has a `runs` array")
        .len();
    assert_eq!(n, cells.len(), "artifact covers every sweep cell");
    println!("wrote {n} runs to {out}");
}
