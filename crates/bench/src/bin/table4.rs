//! Reproduces paper Table 4: prediction accuracy of PMEvo versus
//! llvm-mca on the ZEN-like and A72-like machines (the platforms out of
//! reach of counter-based approaches).
//!
//! Usage: `cargo run --release -p pmevo-bench --bin table4
//!         [--n 2000] [--full (= 40000)] [--scale 1] [--seed 4]`

use pmevo_baselines::mca_like;
use pmevo_bench::{
    evaluate_predictor, measure_benchmark_set, pmevo_mapping_cached, sample_experiments,
    sim_backend, Args,
};
use pmevo_core::{MappingPredictor, ThroughputPredictor};
use pmevo_machine::platforms;
use pmevo_stats::Table;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("n", if args.has("full") { 40_000 } else { 2_000 });
    let scale = args.get_usize("scale", 1);
    let seed = args.seed(4);

    println!("Table 4: prediction accuracy on ZEN and A72 ({n} experiments of size 5)\n");
    let mut table = Table::new(vec!["", "MAPE", "Pearson CC", "Spearman CC"]);

    for platform in [platforms::zen(), platforms::a72()] {
        eprintln!("[table4] measuring on {} ...", platform.name());
        let experiments = sample_experiments(platform.isa().len(), 5, n, seed);
        let mut backend = sim_backend(&platform);
        let benchmark = measure_benchmark_set(&mut backend, &experiments);
        let pmevo = MappingPredictor::new(
            format!("PMEvo ({})", platform.name()),
            pmevo_mapping_cached(&platform, scale, seed),
        );
        let mca = mca_like(&platform);
        for p in [&pmevo as &dyn ThroughputPredictor, &mca] {
            let (_, summary) = evaluate_predictor(p, &benchmark);
            let label = if p.name().starts_with("PMEvo") {
                p.name().to_string()
            } else {
                format!("{} ({})", p.name(), platform.name())
            };
            table.row(vec![
                label,
                format!("{:.1}%", summary.mape),
                format!("{:.2}", summary.pearson),
                format!("{:.2}", summary.spearman),
            ]);
        }
    }
    println!("{table}");
    println!("Paper values: PMEvo(ZEN) 13.5%/0.94/0.87, llvm-mca(ZEN) 50.8%/0.86/0.54,");
    println!("PMEvo(A72) 21.4%/0.68/0.77, llvm-mca(A72) 65.3%/0.67/0.68.");
}
