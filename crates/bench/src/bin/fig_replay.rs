//! BHive-style corpus replay through the real-ISA front end: stream a
//! synthetic corpus of disassembled x86-64 basic blocks through the
//! `pmevo-x86` resolver and a [`Predictor`], per target uarch, and
//! report coverage, accounting and throughput.
//!
//! Usage: `cargo run --release -p pmevo-bench --bin fig_replay
//!         [--blocks 2000] [--uarch skl,zen,a72] [--jobs-list 1,2,8]
//!         [--cache 65536] [--seed 7] [--timings]
//!         [--out BENCH_replay.json]`
//!
//! The corpus is seeded and identical for every uarch (the A72 column
//! exercises the cross-ISA translation table on the same x86 text).
//! Each uarch is replayed once per worker count in `--jobs-list`, and
//! the accounting JSON of every cell is asserted byte-identical — the
//! replay result is a pure function of (corpus, uarch, mapping), never
//! of predictor parallelism. **Without** `--timings` the artifact
//! contains no wall-clock fields, so two runs emit identical bytes and
//! CI double-runs and `cmp`s them, exactly like `fig_budget` and
//! `fig_predict`. With `--timings` each cell additionally reports
//! blocks/second.

use pmevo_bench::Args;
use pmevo_core::json::{self, Value};
use pmevo_machine::platforms;
use pmevo_predict::{MappingId, MappingStore, Predictor, PredictorConfig};
use pmevo_stats::Table;
use pmevo_x86::{accounting_json, replay, synthetic_corpus, Resolver};
use std::time::Instant;

/// Ground-truth store for one platform, the stand-in for a deployed
/// inferred artifact.
fn build_store(platform_name: &str) -> (MappingStore, MappingId) {
    let p = platforms::by_name(platform_name)
        .unwrap_or_else(|| panic!("unknown platform {platform_name:?}"));
    let mut store = MappingStore::new();
    let names = p.isa().forms().iter().map(|f| f.name.clone()).collect();
    let id = store.insert(p.name(), names, p.ground_truth().clone());
    (store, id)
}

fn parse_list(args: &Args, name: &str, default: &str) -> Vec<usize> {
    args.get_str(name)
        .unwrap_or(default)
        .split(',')
        .map(|v| v.trim().parse().unwrap_or_else(|_| panic!("--{name} expects comma-separated integers")))
        .collect()
}

fn main() {
    let args = Args::parse();
    let seed = args.seed(7);
    let blocks = args.get_usize("blocks", 2000);
    let cache_capacity = args.get_usize("cache", 1 << 16);
    let jobs_list = parse_list(&args, "jobs-list", "1,2,8");
    let timings = args.has("timings");
    let out = args.get_str("out").unwrap_or("BENCH_replay.json").to_owned();
    let uarch_names: Vec<String> = args
        .get_str("uarch")
        .unwrap_or("skl,zen,a72")
        .split(',')
        .map(|s| s.trim().to_lowercase())
        .collect();

    let corpus = synthetic_corpus(blocks, seed);
    println!("fig_replay: {blocks} basic blocks (seed {seed}) against {uarch_names:?}\n");

    let mut table = Table::new(vec![
        "uarch", "workers", "blocks", "mapped", "inst cov", "checksum", "blocks/s",
    ]);
    let mut uarch_rows: Vec<Value> = Vec::with_capacity(uarch_names.len());
    for name in &uarch_names {
        let table_for = || {
            pmevo_x86::by_name(name)
                .unwrap_or_else(|| panic!("unknown uarch {name:?}; expected skl, zen or a72"))
        };
        let platform = platforms::by_name(table_for().platform())
            .expect("every uarch table names a built-in platform");
        let mut reference: Option<String> = None;
        let mut cells: Vec<Value> = Vec::with_capacity(jobs_list.len());
        for &workers in &jobs_list {
            // A fresh resolver, store and predictor per cell: no cache
            // state leaks between worker counts.
            let resolver = Resolver::new(table_for(), platform.isa());
            let (store, id) = build_store(platform.name());
            let predictor =
                Predictor::new(store, PredictorConfig { workers, cache_capacity });
            let started = Instant::now();
            let r = replay(&corpus, &resolver, &predictor, id);
            let elapsed = started.elapsed();
            let acc_json = accounting_json(&r.accounting);
            // The determinism contract of the whole subsystem: worker
            // count never changes a byte of the accounting.
            match &reference {
                None => reference = Some(acc_json.clone()),
                Some(first) => assert_eq!(
                    &acc_json, first,
                    "accounting must be byte-identical across worker counts ({name})"
                ),
            }
            let blocks_per_sec =
                timings.then(|| r.accounting.blocks as f64 / elapsed.as_secs_f64());
            table.row(vec![
                name.clone(),
                workers.to_string(),
                r.accounting.blocks.to_string(),
                r.accounting.mapped_blocks.to_string(),
                format!("{:.1}%", 100.0 * r.accounting.inst_coverage()),
                format!("{:016x}", r.accounting.checksum),
                blocks_per_sec.map(|b| format!("{b:.0}")).unwrap_or_else(|| "-".into()),
            ]);
            cells.push(Value::Obj(vec![
                ("workers".into(), Value::UInt(workers as u64)),
                (
                    "blocks_per_sec".into(),
                    blocks_per_sec.map(Value::Num).unwrap_or(Value::Null),
                ),
            ]));
        }
        let accounting =
            json::parse(reference.as_deref().expect("at least one worker cell"))
                .expect("accounting JSON parses");
        uarch_rows.push(Value::Obj(vec![
            ("uarch".into(), Value::Str(name.clone())),
            ("platform".into(), Value::Str(platform.name().to_string())),
            ("accounting".into(), accounting),
            ("cells".into(), Value::Arr(cells)),
        ]));
    }
    println!("{table}");

    let artifact = Value::Obj(vec![
        ("seed".into(), Value::UInt(seed)),
        ("blocks".into(), Value::UInt(blocks as u64)),
        ("uarchs".into(), Value::Arr(uarch_rows)),
    ]);
    let text = json::write_pretty(&artifact);
    std::fs::write(&out, &text).expect("write BENCH_replay.json");
    let parsed = json::parse(&text).expect("emitted artifact parses");
    let n = parsed.get("uarchs").and_then(Value::as_arr).expect("artifact has uarchs").len();
    assert_eq!(n, uarch_names.len(), "artifact covers every uarch");
    println!("wrote {n} uarch replays to {out}");
}
