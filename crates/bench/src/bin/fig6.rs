//! Reproduces paper Figure 6: mean absolute percentage error of the
//! analytical throughput model (with the ground-truth/uops.info mapping)
//! and of the IACA-like pipeline model against measurements, for
//! experiment lengths 1–15.
//!
//! Usage: `cargo run --release -p pmevo-bench --bin fig6 [--n 200] [--max-len 15] [--seed 6]`
//!
//! Paper defaults: 2 000 experiments per length (`--n 2000`).

use pmevo_baselines::{oracle, IacaLike};
use pmevo_bench::{measure_benchmark_set, sample_experiments, sim_backend, Args};
use pmevo_core::{Experiment, MeasurementBackend, ThroughputPredictor};
use pmevo_machine::platforms;
use pmevo_stats::{mape, Table};

fn main() {
    let args = Args::parse();
    let n = args.get_usize("n", if args.has("full") { 2000 } else { 200 });
    let max_len = args.get_usize("max-len", 15);
    let seed = args.seed(6);

    let skl = platforms::skl();
    let uops_info = oracle(&skl);
    let iaca = IacaLike::new(&skl);
    let mut backend = sim_backend(&skl);

    println!("Figure 6: model error vs experiment length (SKL, n={n} per length)\n");
    let mut table = Table::new(vec!["length", "uops.info MAPE", "IACA MAPE"]);
    let mut csv = String::from("length,uopsinfo_mape,iaca_mape\n");

    for len in 1..=max_len {
        let experiments: Vec<Experiment> = if len == 1 {
            skl.isa().ids().map(Experiment::singleton).collect()
        } else {
            sample_experiments(skl.isa().len(), len as u32, n, seed + len as u64)
        };
        let benchmark = measure_benchmark_set(&mut backend, &experiments);
        let measured: Vec<f64> = benchmark.iter().map(|m| m.throughput).collect();
        let pred_uops: Vec<f64> = benchmark
            .iter()
            .map(|m| uops_info.predict(&m.experiment))
            .collect();
        let pred_iaca: Vec<f64> = benchmark
            .iter()
            .map(|m| iaca.predict(&m.experiment))
            .collect();
        let m_uops = mape(&pred_uops, &measured);
        let m_iaca = mape(&pred_iaca, &measured);
        table.row(vec![
            len.to_string(),
            format!("{m_uops:5.1}%"),
            format!("{m_iaca:5.1}%"),
        ]);
        csv.push_str(&format!("{len},{m_uops:.3},{m_iaca:.3}\n"));
    }
    println!("{table}");
    eprintln!(
        "[fig6] {} simulator measurements performed",
        backend.stats().measurements_performed
    );

    let path = pmevo_bench::artifact_dir().join("fig6.csv");
    std::fs::write(&path, csv).expect("write fig6 csv");
    println!("series written to {}", path.display());
    println!("\nExpected shape (paper): low error at short lengths, rising for");
    println!("the pure port-mapping model as scheduling effects accumulate;");
    println!("the pipeline-aware IACA-like model stays lower.");
}
