//! Reproduces paper Table 2: PMEvo mapping characteristics — the full
//! inference pipeline per platform, reporting benchmarking time,
//! inference time, congruence ratio and distinct-µop count. The inferred
//! mappings are cached in the artifact directory for `table3`, `table4`
//! and `fig7`.
//!
//! Usage: `cargo run --release -p pmevo-bench --bin table2
//!         [--platform SKL|ZEN|A72] [--scale 1] [--seed 2]`
//!
//! The paper ran with population 100 000 over hours of machine time;
//! `--scale N` multiplies the default population of 300 (use `--scale 10`
//! with `--full`-style patience for higher fidelity).

use pmevo_bench::{
    artifact_dir, default_pipeline_config, parallel_measure, save_mapping, selected_platforms,
    Args,
};
use pmevo_machine::MeasureConfig;
use pmevo_stats::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get_usize("scale", 1);
    let seed = args.get_u64("seed", 2);
    let platforms = selected_platforms(&args);

    println!(
        "Table 2: PMEvo mapping characteristics (population {}, ε = 0.05)\n",
        300 * scale.max(1)
    );
    let mut table = Table::new(vec![
        "",
        "benchmarking time",
        "inference time",
        "insns found congruent",
        "number of µops",
    ]);

    for platform in &platforms {
        eprintln!("[table2] inferring mapping for {} ...", platform.name());
        let measure_cfg = MeasureConfig::default();
        let config = default_pipeline_config(scale, seed);
        let result = pmevo_evo::run(
            platform.isa().len(),
            platform.num_ports(),
            |exps| parallel_measure(platform, &measure_cfg, exps),
            &config,
        );
        let path = artifact_dir().join(format!(
            "pmevo_{}_x{scale}.json",
            platform.name().to_lowercase()
        ));
        save_mapping(&path, &result.mapping);
        eprintln!(
            "[table2] {}: D_avg = {:.4}, {} generations, mapping cached at {}",
            platform.name(),
            result.evo.objectives.error,
            result.evo.generations,
            path.display()
        );
        table.row(vec![
            platform.name().to_string(),
            format!("{:.1?}", result.benchmarking_time),
            format!("{:.1?}", result.inference_time),
            format!("{:.0}%", 100.0 * result.congruent_fraction),
            result.num_distinct_uops().to_string(),
        ]);
    }
    println!("{table}");
    println!("Paper values (hardware scale): benchmarking 20h/27h/74h,");
    println!("inference 5h/21h/12h, congruent 69%/53%/56%, µops 17/15/9.");
}
