//! Reproduces paper Table 2: PMEvo mapping characteristics — one
//! inference [`pmevo::Session`] per platform, reporting benchmarking
//! time, inference time, measurement counts, congruence ratio and
//! distinct-µop count. The inferred mappings are cached in the artifact
//! directory for `table3`, `table4` and `fig7`, next to the full
//! session reports.
//!
//! Usage: `cargo run --release -p pmevo-bench --bin table2
//!         [--platform SKL|ZEN|A72|TINY] [--algorithm pmevo|counting|random|lp]
//!         [--selection one-shot|disagreement|uniform] [--top-k 16]
//!         [--budget N] [--scale 1] [--seed 2] [--jobs 1]`
//!
//! The paper ran with population 100 000 over hours of machine time;
//! `--scale N` multiplies the default population of 300 (use `--scale 10`
//! with `--full`-style patience for higher fidelity). `--jobs N` runs
//! the per-platform sessions concurrently over a shared worker pool.
//! A round-based `--selection` (with `--budget`) runs PMEvo's adaptive
//! experiment scheduler; its artifacts are keyed by the policy slug so
//! they never collide with the one-shot cache.

use pmevo::{Service, Session};
use pmevo_bench::{
    artifact_dir, mapping_artifact_path, save_mapping, selected_algorithm, selected_budget,
    selected_platforms, selected_selection, Args,
};
use pmevo_stats::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get_usize("scale", 1);
    let seed = args.seed(2);
    let jobs = args.get_usize("jobs", 1);
    let selection = selected_selection(&args);
    let budget = selected_budget(&args);
    let platforms = selected_platforms(&args);

    println!(
        "Table 2: PMEvo mapping characteristics (population {}, ε = 0.05)\n",
        300 * scale.max(1)
    );
    let mut table = Table::new(vec![
        "",
        "benchmarking time",
        "inference time",
        "measurements",
        "insns found congruent",
        "number of µops",
    ]);

    let sessions: Vec<Session> = platforms
        .iter()
        .map(|platform| {
            eprintln!("[table2] queueing inference for {} ...", platform.name());
            pmevo_bench::inference_session(
                platform,
                selected_algorithm(&args, scale, seed),
                seed,
                selection,
                budget,
            )
        })
        .collect();
    let reports = Service::new(jobs.max(1)).run_many(sessions);

    for (platform, report) in platforms.iter().zip(reports) {
        // Artifacts are keyed by algorithm *and* selection policy so a
        // baseline run can never masquerade as the PMEvo mapping that
        // `pmevo_mapping_cached` (and thus table3/table4/fig7) picks up,
        // and a budget-capped adaptive run can never poison the
        // one-shot cache — even when `--jobs` writes them concurrently.
        let path = mapping_artifact_path(&report.algorithm, selection, platform, scale);
        save_mapping(&path, &report.mapping);
        let report_path = artifact_dir().join(format!(
            "session_{}_{}_{}_x{scale}.json",
            report.algorithm.to_lowercase(),
            selection.slug(),
            platform.name().to_lowercase()
        ));
        std::fs::write(&report_path, report.to_json_pretty()).expect("write session report");
        eprintln!(
            "[table2] {}: D_avg = {:.4}, mapping cached at {}, report at {}",
            platform.name(),
            report.training_error.unwrap_or(f64::NAN),
            path.display(),
            report_path.display()
        );
        table.row(vec![
            platform.name().to_string(),
            format!("{:.1?}", report.benchmarking_time),
            format!("{:.1?}", report.inference_time),
            report.measurements_performed.to_string(),
            format!("{:.0}%", 100.0 * report.congruent_fraction),
            report.mapping.num_distinct_uops().to_string(),
        ]);
    }
    println!("{table}");
    println!("Paper values (hardware scale): benchmarking 20h/27h/74h,");
    println!("inference 5h/21h/12h, congruent 69%/53%/56%, µops 17/15/9.");
}
