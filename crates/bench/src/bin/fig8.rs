//! Reproduces paper Figure 8: execution-time comparison of the
//! bottleneck simulation algorithm against the LP solver —
//! (a) varying the number of ports with experiments of length 4, and
//! (b) varying the experiment length with 10 ports.
//!
//! The workload matches §5.4: randomly generated three-level mappings
//! over an artificial 100-instruction ISA, random experiments, median of
//! per-(mapping, experiment) mean execution times.
//!
//! Usage: `cargo run --release -p pmevo-bench --bin fig8
//!         [--mappings 8] [--experiments 32] [--max-ports 20] [--seed 8]`

use pmevo_bench::{artifact_dir, sample_experiments, Args};
use pmevo_core::bottleneck::{lp_throughput, throughput_fast};
use pmevo_core::{Experiment, ThreeLevelMapping};
use pmevo_stats::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const NUM_INSTS: usize = 100;

/// Times `f` adaptively: repeats until ≥ `budget_ms` elapsed (at least
/// once, at most `max_reps`), returns seconds per call.
fn time_per_call(mut f: impl FnMut() -> f64, budget_ms: f64, max_reps: u32) -> f64 {
    let start = Instant::now();
    let mut reps = 0u32;
    let mut sink = 0.0;
    while reps < max_reps {
        sink += f();
        reps += 1;
        if start.elapsed().as_secs_f64() * 1000.0 >= budget_ms {
            break;
        }
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// One (ports, length) configuration: median seconds/experiment for the
/// bottleneck algorithm and the LP solver.
fn run_config(
    num_ports: usize,
    exp_len: u32,
    num_mappings: usize,
    num_experiments: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let indiv = vec![1.0; NUM_INSTS];
    let mappings: Vec<ThreeLevelMapping> = (0..num_mappings)
        .map(|_| ThreeLevelMapping::sample_random(&mut rng, NUM_INSTS, num_ports, &indiv))
        .collect();
    let experiments: Vec<Experiment> =
        sample_experiments(NUM_INSTS, exp_len, num_experiments, seed ^ 0xABCD);

    let mut bn_times = Vec::new();
    let mut lp_times = Vec::new();
    for m in &mappings {
        for e in &experiments {
            let masses = m.uop_masses(e);
            bn_times.push(time_per_call(|| throughput_fast(&masses), 0.5, 1000));
            lp_times.push(time_per_call(|| lp_throughput(&masses), 0.5, 200));
        }
    }
    (median(bn_times), median(lp_times))
}

fn main() {
    let args = Args::parse();
    let num_mappings = args.get_usize("mappings", 8);
    let num_experiments = args.get_usize("experiments", 32);
    let max_ports = args.get_usize("max-ports", 20);
    let seed = args.seed(8);
    let mut csv = String::from("panel,x,bn_seconds,lp_seconds\n");

    println!("Figure 8a: time/experiment vs number of ports (experiment length 4)\n");
    let mut ta = Table::new(vec!["ports", "bn algorithm (s)", "LP solver (s)", "speedup"]);
    for ports in 4..=max_ports {
        let (bn, lp) = run_config(ports, 4, num_mappings, num_experiments, seed + ports as u64);
        ta.row(vec![
            ports.to_string(),
            format!("{bn:.3e}"),
            format!("{lp:.3e}"),
            format!("{:.1}x", lp / bn),
        ]);
        csv.push_str(&format!("a,{ports},{bn:.6e},{lp:.6e}\n"));
    }
    println!("{ta}");

    println!("\nFigure 8b: time/experiment vs experiment length (10 ports)\n");
    let mut tb = Table::new(vec!["length", "bn algorithm (s)", "LP solver (s)", "speedup"]);
    for len in 1..=10u32 {
        let (bn, lp) = run_config(10, len, num_mappings, num_experiments, seed + 100 + u64::from(len));
        tb.row(vec![
            len.to_string(),
            format!("{bn:.3e}"),
            format!("{lp:.3e}"),
            format!("{:.1}x", lp / bn),
        ]);
        csv.push_str(&format!("b,{len},{bn:.6e},{lp:.6e}\n"));
    }
    println!("{tb}");

    let path = artifact_dir().join("fig8.csv");
    std::fs::write(&path, csv).expect("write fig8 csv");
    println!("series written to {}", path.display());
    println!("\nExpected shape (paper): the bottleneck algorithm wins by ~2 orders");
    println!("of magnitude at ≤10 ports; its exponential cost catches up as the");
    println!("port count grows toward 18–20.");
}
