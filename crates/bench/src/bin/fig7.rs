//! Reproduces paper Figure 7: 35×35 heat maps of predicted versus
//! measured throughput for each (tool, platform) pair — PMEvo and
//! llvm-mca on all three machines; uops.info, IACA and Ithemal on SKL.
//!
//! ASCII renderings go to stdout; CSV bin dumps to the artifact
//! directory.
//!
//! Usage: `cargo run --release -p pmevo-bench --bin fig7
//!         [--n 1000] [--scale 1] [--seed 7] [--bins 35]`

use pmevo_baselines::{mca_like, oracle, IacaLike, IthemalConfig, IthemalLike};
use pmevo_bench::{
    artifact_dir, measure_benchmark_set, pmevo_mapping_cached, sample_experiments, sim_backend,
    Args,
};
use pmevo_core::{MappingPredictor, MeasuredExperiment, ThroughputPredictor};
use pmevo_machine::{platforms, Platform};
use pmevo_stats::Heatmap;

fn heatmap_for(
    tool: &dyn ThroughputPredictor,
    benchmark: &[MeasuredExperiment],
    bins: usize,
) -> Heatmap {
    // The paper crops each panel to its interesting range; use the 99th
    // percentile of measured cycles as the limit.
    let mut measured: Vec<f64> = benchmark.iter().map(|m| m.throughput).collect();
    measured.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
    let limit = measured[(measured.len() * 99 / 100).min(measured.len() - 1)].max(1.0);
    let mut h = Heatmap::new(bins, limit);
    for me in benchmark {
        h.record(me.throughput, tool.predict(&me.experiment));
    }
    h
}

fn emit(platform: &Platform, tool: &dyn ThroughputPredictor, h: &Heatmap) {
    println!(
        "\n=== {} on {} (diag≤1 bin: {:.0}%, over-estimation bias {:+.2}) ===",
        tool.name(),
        platform.name(),
        100.0 * h.diagonal_fraction(1),
        h.over_estimation_bias(),
    );
    println!("{h}");
    let path = artifact_dir().join(format!(
        "fig7_{}_{}.csv",
        tool.name().replace(['/', '.', '-'], "_"),
        platform.name().to_lowercase()
    ));
    std::fs::write(&path, h.to_csv()).expect("write fig7 csv");
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("n", 1000);
    let scale = args.get_usize("scale", 1);
    let seed = args.seed(7);
    let bins = args.get_usize("bins", 35);

    println!("Figure 7: predicted vs measured heat maps ({n} experiments of size 5)");

    for platform in [platforms::skl(), platforms::zen(), platforms::a72()] {
        eprintln!("[fig7] measuring on {} ...", platform.name());
        let experiments = sample_experiments(platform.isa().len(), 5, n, seed);
        let mut backend = sim_backend(&platform);
        let benchmark = measure_benchmark_set(&mut backend, &experiments);

        let pmevo = MappingPredictor::new("PMEvo", pmevo_mapping_cached(&platform, scale, seed));
        emit(&platform, &pmevo, &heatmap_for(&pmevo, &benchmark, bins));
        let mca = mca_like(&platform);
        emit(&platform, &mca, &heatmap_for(&mca, &benchmark, bins));

        if platform.name() == "SKL" {
            let uops_info = oracle(&platform);
            emit(&platform, &uops_info, &heatmap_for(&uops_info, &benchmark, bins));
            let iaca = IacaLike::new(&platform);
            emit(&platform, &iaca, &heatmap_for(&iaca, &benchmark, bins));
            eprintln!("[fig7] training the Ithemal-like baseline ...");
            let ithemal = IthemalLike::train(&platform, &IthemalConfig::default());
            emit(&platform, &ithemal, &heatmap_for(&ithemal, &benchmark, bins));
        }
    }
    println!("\nCSV bin dumps written to {}", artifact_dir().display());
}
