//! Island-model sweep: for each island count, run the same PMEvo
//! session at several fitness-worker counts and assert the reports are
//! bit-identical (timings aside) — the island scheduler must be a pure
//! function of the seed. The artifact records one row per island count.
//!
//! Usage: `cargo run --release -p pmevo-bench --bin fig_islands
//!         [--platform TINY|SKL|ZEN|A72] [--islands 1,2,4]
//!         [--workers 1,2,8] [--scale 1] [--seed 2]
//!         [--out BENCH_islands.json]`
//!
//! The default platform is TINY, sized so the whole sweep runs in
//! seconds — CI smoke-runs it twice and asserts the emitted
//! `BENCH_islands.json` is bit-identical. To keep that possible the
//! artifact contains **no wall-clock fields**: every value is a
//! deterministic function of the configuration and seed.

use pmevo::machine::platforms;
use pmevo::{Session, SessionReport};
use pmevo_bench::{selected_platforms, Args};
use pmevo_core::json::{self, Value};
use pmevo_machine::Platform;
use pmevo_stats::Table;

fn parse_list(args: &Args, name: &str, default: &str) -> Vec<u32> {
    args.get_str(name)
        .unwrap_or(default)
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects comma-separated integers"))
        })
        .collect()
}

fn run_cell(platform: &Platform, islands: u32, workers: u32, scale: usize, seed: u64) -> SessionReport {
    // The label must not mention the worker count: the whole point is
    // that the report — label included — is identical across workers.
    let mut session = Session::builder()
        .platform(platform.clone())
        .seed(seed)
        .population(60 * scale.max(1))
        .max_generations(20)
        .islands(islands)
        .accuracy_benchmarks(32)
        .label(format!("islands{}@{}", islands, platform.name()))
        .build()
        .expect("a platform-backed session configuration is always valid");
    session.set_worker_threads(workers as usize);
    session.run()
}

fn main() {
    let args = Args::parse();
    let scale = args.get_usize("scale", 1);
    let seed = args.seed(2);
    let island_counts = parse_list(&args, "islands", "1,2,4");
    let worker_counts = parse_list(&args, "workers", "1,2,8");
    let out = args.get_str("out").unwrap_or("BENCH_islands.json").to_owned();
    // Default to the toy machine: the sweep re-runs every cell once per
    // worker count and is meant as a smoke-testable figure.
    let platforms = if args.has("platform") {
        selected_platforms(&args)
    } else {
        vec![platforms::tiny()]
    };

    println!("fig_islands: island-model worker invariance (seed {seed})\n");
    let mut table = Table::new(vec!["", "islands", "workers", "measurements", "D_avg", "held-out MAPE"]);
    let mut rows = Vec::new();
    for platform in &platforms {
        for &islands in &island_counts {
            // The first worker count is the reference; every other one
            // must reproduce its report bit-for-bit, timings aside.
            let reference = run_cell(platform, islands, worker_counts[0], scale, seed);
            for &workers in &worker_counts[1..] {
                let report = run_cell(platform, islands, workers, scale, seed);
                assert_eq!(
                    report.without_timings(),
                    reference.without_timings(),
                    "islands={islands} diverged between {} and {workers} workers on {}",
                    worker_counts[0],
                    platform.name(),
                );
            }
            table.row(vec![
                platform.name().to_owned(),
                islands.to_string(),
                worker_counts
                    .iter()
                    .map(|w| w.to_string())
                    .collect::<Vec<_>>()
                    .join("/"),
                reference.measurements_performed.to_string(),
                format!("{:.4}", reference.training_error.unwrap_or(f64::NAN)),
                reference
                    .accuracy
                    .as_ref()
                    .map(|a| format!("{:.1}%", a.mape))
                    .unwrap_or_else(|| "-".into()),
            ]);
            rows.push(Value::Obj(vec![
                ("platform".into(), Value::Str(platform.name().to_owned())),
                ("islands".into(), Value::UInt(u64::from(islands))),
                (
                    "workers_checked".into(),
                    Value::Arr(worker_counts.iter().map(|&w| Value::UInt(u64::from(w))).collect()),
                ),
                (
                    "measurements_performed".into(),
                    Value::UInt(reference.measurements_performed),
                ),
                (
                    "num_experiments".into(),
                    Value::UInt(reference.num_experiments as u64),
                ),
                (
                    "training_error".into(),
                    reference.training_error.map(Value::Num).unwrap_or(Value::Null),
                ),
                (
                    "holdout_mape".into(),
                    reference
                        .accuracy
                        .as_ref()
                        .map(|a| Value::Num(a.mape))
                        .unwrap_or(Value::Null),
                ),
            ]));
        }
    }
    println!("{table}");

    let artifact = Value::Obj(vec![
        ("seed".into(), Value::UInt(seed)),
        ("scale".into(), Value::UInt(scale as u64)),
        ("runs".into(), Value::Arr(rows)),
    ]);
    let text = json::write_pretty(&artifact);
    std::fs::write(&out, &text).expect("write BENCH_islands.json");

    // Self-check: the artifact must parse back and cover every cell —
    // CI reruns the binary and diffs the bytes, so fail loudly here
    // rather than emit something half-written.
    let parsed = json::parse(&text).expect("emitted artifact parses");
    let runs = match &parsed {
        Value::Obj(fields) => match fields.iter().find(|(k, _)| k == "runs") {
            Some((_, Value::Arr(rows))) => rows.len(),
            _ => 0,
        },
        _ => 0,
    };
    assert_eq!(runs, platforms.len() * island_counts.len(), "artifact covers every cell");
    println!("artifact written to {out}");
}
