//! Reproduces paper Table 3: prediction accuracy (MAPE, Pearson,
//! Spearman) of PMEvo, uops.info, IACA, llvm-mca and Ithemal on
//! port-mapping-bound experiments on the SKL-like machine.
//!
//! Usage: `cargo run --release -p pmevo-bench --bin table3
//!         [--n 2000] [--full (= 40000)] [--scale 1] [--seed 3]`
//!
//! The PMEvo mapping is taken from the artifact cache (run `table2`
//! first) or inferred on the fly.

use pmevo_baselines::{mca_like, oracle, IacaLike, IthemalConfig, IthemalLike};
use pmevo_bench::{
    evaluate_predictor, measure_benchmark_set, pmevo_mapping_cached, sample_experiments,
    sim_backend, Args,
};
use pmevo_core::{MappingPredictor, ThroughputPredictor};
use pmevo_machine::platforms;
use pmevo_stats::Table;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("n", if args.has("full") { 40_000 } else { 2_000 });
    let scale = args.get_usize("scale", 1);
    let seed = args.seed(3);

    let skl = platforms::skl();
    eprintln!("[table3] measuring {n} size-5 experiments on SKL ...");
    let experiments = sample_experiments(skl.isa().len(), 5, n, seed);
    let mut backend = sim_backend(&skl);
    let benchmark = measure_benchmark_set(&mut backend, &experiments);

    eprintln!("[table3] loading/inferring the PMEvo mapping ...");
    let pmevo = MappingPredictor::new("PMEvo", pmevo_mapping_cached(&skl, scale, seed));
    eprintln!("[table3] training the Ithemal-like baseline ...");
    let ithemal = IthemalLike::train(&skl, &IthemalConfig::default());
    let uops_info = oracle(&skl);
    let iaca = IacaLike::new(&skl);
    let mca = mca_like(&skl);

    let predictors: Vec<&dyn ThroughputPredictor> =
        vec![&pmevo, &uops_info, &iaca, &mca, &ithemal];

    println!("\nTable 3: prediction accuracy on SKL ({n} experiments of size 5)\n");
    let mut table = Table::new(vec!["", "MAPE", "Pearson CC", "Spearman CC"]);
    for p in predictors {
        let (_, summary) = evaluate_predictor(p, &benchmark);
        table.row(vec![
            p.name().to_string(),
            format!("{:.1}%", summary.mape),
            format!("{:.2}", summary.pearson),
            format!("{:.2}", summary.spearman),
        ]);
    }
    println!("{table}");
    println!("Paper values: PMEvo 14.7%/0.98/0.85, uops.info 9.3%/0.92/0.88,");
    println!("IACA 8.0%/0.86/0.79, llvm-mca 9.7%/0.87/0.82, Ithemal 60.6%/0.35/0.54.");
}
