//! Serving-throughput sweep for the `pmevo-predict` layer: how many
//! sequences per second does a [`Predictor`] answer as batch size,
//! worker count and result caching vary?
//!
//! Usage: `cargo run --release -p pmevo-bench --bin fig_predict
//!         [--platform SKL,ZEN,A72] [--sequences 20000] [--distinct 400]
//!         [--batches 1,64,1024] [--jobs-list 1,2,8] [--cache 65536]
//!         [--seed 5] [--timings] [--out BENCH_predict.json]`
//!
//! The workload is a seeded, skewed query stream — `--sequences` queries
//! drawn from a pool of `--distinct` basic blocks across a 3-platform
//! [`MappingStore`] (ground-truth mappings stand in for deployed
//! inferred artifacts) — replayed identically against every sweep cell.
//! Every cell reports deterministic serving counters (hit rate, a
//! checksum over all predicted cycles in query order): **without**
//! `--timings` the artifact contains no wall-clock fields at all, so two
//! runs emit identical bytes and CI `cmp`s them, exactly like
//! `fig_budget`. With `--timings` each cell additionally reports
//! sequences/second, and the artifact gains the headline ratio
//! `speedup_cached_batch_vs_uncached_single` (the cached, batched,
//! pooled path vs per-sequence uncached prediction).
//!
//! Every configuration is paired with a `cache_capacity: 0` companion
//! cell, so the 0%-hit-rate (pure miss-path) throughput is always part
//! of the sweep; `--cache 0` collapses the sweep to *only* those
//! uncached cells — the CI determinism gate runs that mode double and
//! `cmp`s the artifacts.

use pmevo_bench::Args;
use pmevo_core::json::{self, Value};
use pmevo_core::{Experiment, InstId};
use pmevo_machine::platforms;
use pmevo_predict::{MappingId, MappingStore, Predictor, PredictorConfig};
use pmevo_stats::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// FNV-1a over the raw bits of every prediction, in query order: equal
/// checksums mean bit-identical serving results.
fn checksum(cycles: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in cycles {
        for b in t.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// One sweep cell: a serving configuration the workload is replayed
/// against.
struct Cell {
    batch: usize,
    workers: usize,
    cache_capacity: usize,
}

struct CellResult {
    hit_rate: f64,
    cache_hits: u64,
    checksum: u64,
    total_cycles: f64,
    elapsed_ns: Option<u128>,
}

fn build_store(platform_names: &[String]) -> MappingStore {
    let mut store = MappingStore::new();
    for name in platform_names {
        let p = platforms::by_name(name)
            .unwrap_or_else(|| panic!("unknown platform {name:?}; expected SKL, ZEN, A72 or TINY"));
        let names = p.isa().forms().iter().map(|f| f.name.clone()).collect();
        store.insert(p.name(), names, p.ground_truth().clone());
    }
    store
}

/// The seeded skewed query stream: `total` queries drawn uniformly from
/// a pool of `distinct` random basic blocks spread over the store's
/// mappings.
fn workload(store: &MappingStore, total: usize, distinct: usize, seed: u64) -> Vec<(MappingId, Experiment)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids: Vec<MappingId> = store.ids().collect();
    let pool: Vec<(MappingId, Experiment)> = (0..distinct)
        .map(|_| {
            let id = ids[rng.gen_range(0..ids.len())];
            let num_insts = store.get(id).num_insts();
            let counts: Vec<(InstId, u32)> = (0..rng.gen_range(1..=4u32))
                .map(|_| (InstId(rng.gen_range(0..num_insts as u32)), rng.gen_range(1..=3)))
                .collect();
            (id, Experiment::from_counts(&counts))
        })
        .collect();
    (0..total).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect()
}

/// Replays the workload against one serving configuration, returning
/// predictions in query order plus the serving counters.
fn run_cell(cell: &Cell, platform_names: &[String], queries: &[(MappingId, Experiment)], timings: bool) -> CellResult {
    // A fresh store and predictor per cell: no cache state or solver
    // warm-up leaks between cells.
    let store = build_store(platform_names);
    let predictor = Predictor::new(
        store,
        PredictorConfig { workers: cell.workers, cache_capacity: cell.cache_capacity },
    );
    let mut cycles: Vec<f64> = vec![0.0; queries.len()];
    let started = Instant::now();
    for (chunk, offset) in queries.chunks(cell.batch).zip(chunk_offsets(queries.len(), cell.batch)) {
        // The predictor groups each window per mapping, exactly like the
        // CLI's serving mode.
        for (k, t) in predictor.predict_routed(chunk).into_iter().enumerate() {
            cycles[offset + k] = t;
        }
    }
    let elapsed = started.elapsed();
    let stats = predictor.stats();
    CellResult {
        hit_rate: stats.hit_rate(),
        cache_hits: stats.cache_hits,
        checksum: checksum(&cycles),
        total_cycles: cycles.iter().sum(),
        elapsed_ns: timings.then_some(elapsed.as_nanos()),
    }
}

fn chunk_offsets(len: usize, chunk: usize) -> impl Iterator<Item = usize> {
    (0..len).step_by(chunk.max(1))
}

fn parse_list(args: &Args, name: &str, default: &str) -> Vec<usize> {
    args.get_str(name)
        .unwrap_or(default)
        .split(',')
        .map(|v| v.trim().parse().unwrap_or_else(|_| panic!("--{name} expects comma-separated integers")))
        .collect()
}

fn main() {
    let args = Args::parse();
    let seed = args.seed(5);
    let total = args.get_usize("sequences", 20_000);
    let distinct = args.get_usize("distinct", 400).max(1);
    let cache_capacity = args.get_usize("cache", 1 << 16);
    let batches = parse_list(&args, "batches", "1,64,1024");
    let jobs_list = parse_list(&args, "jobs-list", "1,2,8");
    let timings = args.has("timings");
    let out = args.get_str("out").unwrap_or("BENCH_predict.json").to_owned();
    let platform_names: Vec<String> = args
        .get_str("platform")
        .unwrap_or("SKL,ZEN,A72")
        .split(',')
        .map(|s| s.trim().to_uppercase())
        .collect();

    let store = build_store(&platform_names);
    let queries = workload(&store, total, distinct, seed);
    println!(
        "fig_predict: {total} queries over {distinct} distinct blocks, {}-platform store (seed {seed})\n",
        platform_names.len()
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &batch in &batches {
        for &workers in &jobs_list {
            cells.push(Cell { batch: batch.max(1), workers, cache_capacity });
            // The 0%-hit-rate companion cell for every configuration.
            // Under `--cache 0` the whole sweep *is* the uncached sweep
            // and the cell above already covers it.
            if cache_capacity != 0 {
                cells.push(Cell { batch: batch.max(1), workers, cache_capacity: 0 });
            }
        }
    }

    let mut table = Table::new(vec!["batch", "workers", "cache", "hit rate", "checksum", "seq/s"]);
    let mut rows = Vec::with_capacity(cells.len());
    let mut cached_batch_ns: Option<u128> = None;
    let mut uncached_single_ns: Option<u128> = None;
    for cell in &cells {
        let r = run_cell(cell, &platform_names, &queries, timings);
        // The headline comparison: best cached batched cell vs the
        // per-sequence uncached baseline (batch 1, one worker, no cache).
        if let Some(ns) = r.elapsed_ns {
            if cell.cache_capacity > 0 && cell.batch > 1 {
                cached_batch_ns = Some(cached_batch_ns.map_or(ns, |best| best.min(ns)));
            }
            if cell.cache_capacity == 0 && cell.batch == 1 && cell.workers == 1 {
                uncached_single_ns = Some(ns);
            }
        }
        let seq_per_sec = r
            .elapsed_ns
            .map(|ns| total as f64 / (ns as f64 / 1e9));
        table.row(vec![
            cell.batch.to_string(),
            cell.workers.to_string(),
            if cell.cache_capacity > 0 { cell.cache_capacity.to_string() } else { "off".into() },
            format!("{:.1}%", 100.0 * r.hit_rate),
            format!("{:016x}", r.checksum),
            seq_per_sec.map(|s| format!("{s:.0}")).unwrap_or_else(|| "-".into()),
        ]);
        rows.push(Value::Obj(vec![
            ("batch".into(), Value::UInt(cell.batch as u64)),
            ("workers".into(), Value::UInt(cell.workers as u64)),
            ("cache_capacity".into(), Value::UInt(cell.cache_capacity as u64)),
            ("cache_hits".into(), Value::UInt(r.cache_hits)),
            ("hit_rate".into(), Value::Num(r.hit_rate)),
            ("checksum".into(), Value::UInt(r.checksum)),
            ("total_cycles".into(), Value::Num(r.total_cycles)),
            (
                "seq_per_sec".into(),
                seq_per_sec.map(Value::Num).unwrap_or(Value::Null),
            ),
        ]));
    }
    println!("{table}");

    // Every cell must have served the same results: the checksum is a
    // pure function of (workload, mappings), independent of batch size,
    // worker count and caching.
    let reference = match &rows[0].get("checksum") {
        Some(Value::UInt(c)) => *c,
        _ => unreachable!("checksum is always emitted"),
    };
    for row in &rows {
        assert_eq!(
            row.get("checksum").and_then(Value::as_u64),
            Some(reference),
            "serving results must be identical across all cells"
        );
    }

    let speedup = match (cached_batch_ns, uncached_single_ns) {
        (Some(fast), Some(slow)) => {
            let ratio = slow as f64 / fast as f64;
            println!("cached batch path vs per-sequence uncached: {ratio:.1}x");
            Value::Num(ratio)
        }
        _ => Value::Null,
    };
    let artifact = Value::Obj(vec![
        ("seed".into(), Value::UInt(seed)),
        ("sequences".into(), Value::UInt(total as u64)),
        ("distinct".into(), Value::UInt(distinct as u64)),
        (
            "platforms".into(),
            Value::Arr(platform_names.iter().cloned().map(Value::Str).collect()),
        ),
        ("cells".into(), Value::Arr(rows)),
        ("speedup_cached_batch_vs_uncached_single".into(), speedup),
    ]);
    let text = json::write_pretty(&artifact);
    std::fs::write(&out, &text).expect("write BENCH_predict.json");
    let parsed = json::parse(&text).expect("emitted artifact parses");
    let n = parsed.get("cells").and_then(Value::as_arr).expect("artifact has cells").len();
    assert_eq!(n, cells.len(), "artifact covers every sweep cell");
    println!("wrote {n} cells to {out}");
}
