//! Memory-budget sweep for the budgeted [`MappingStore`]: what do
//! eviction and lazy reload cost — and what do they change — as the
//! number of registered mapping artifacts and the payload byte budget
//! vary?
//!
//! Usage: `cargo run --release -p pmevo-bench --bin fig_store
//!         [--mappings-list 4,16,64] [--budget-pcts 0,25,50,100]
//!         [--queries 3000] [--distinct 96] [--batch 64] [--seed 9]
//!         [--timings] [--out BENCH_store.json]`
//!
//! The workload is fully seeded: for each mapping count the sweep
//! generates that many synthetic binary artifacts (`.bin`, embedded
//! name tables) in a scratch directory, registers them as evictable
//! entries, and replays one seeded query stream — single worker, cache
//! off, fixed batch size — against an unbudgeted store and against
//! byte budgets at each percentage of the total payload size. Every
//! budgeted cell must answer **bit-identically** to the unbudgeted
//! reference (the sweep asserts it); what the budget changes is the
//! eviction/reload traffic and the resident byte count, which each cell
//! reports.
//!
//! **Without** `--timings` the artifact contains no wall-clock fields
//! and no filesystem paths, so two runs emit identical bytes and CI
//! `cmp`s them. With `--timings` each cell additionally reports
//! queries/second, making the cost of riding the reload path visible.

use pmevo_bench::Args;
use pmevo_core::json::{self, Value};
use pmevo_core::{Experiment, InstId, MappingArtifact, PortSet, ThreeLevelMapping, UopEntry};
use pmevo_predict::{MappingId, MappingStore, Predictor, PredictorConfig, ResidencyStats};
use pmevo_stats::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Instant;

/// FNV-1a over the raw bits of every prediction, in query order: equal
/// checksums mean bit-identical serving results.
fn checksum(cycles: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in cycles {
        for b in t.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// One seeded synthetic mapping artifact: a small random ISA with a
/// random decomposition — stand-in for one fleet machine's inferred
/// mapping.
fn synthetic_artifact(rng: &mut StdRng) -> MappingArtifact {
    let num_ports = rng.gen_range(2..=6usize);
    let num_insts = rng.gen_range(4..=12usize);
    let decomp = (0..num_insts)
        .map(|_| {
            (0..rng.gen_range(1..=3u32))
                .map(|_| {
                    let mask = rng.gen_range(1..(1u64 << num_ports));
                    UopEntry::new(rng.gen_range(1..=2), PortSet::from_mask(mask))
                })
                .collect()
        })
        .collect();
    let mapping = ThreeLevelMapping::new(num_ports, decomp);
    let names = (0..mapping.num_insts()).map(|i| format!("op{i}")).collect();
    MappingArtifact::new(names, mapping)
}

/// Writes `count` seeded artifacts into the scratch directory and
/// returns their paths, in registration order.
fn write_fleet(count: usize, seed: u64) -> Vec<PathBuf> {
    let dir = std::env::temp_dir().join("pmevo_fig_store");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let path = dir.join(format!("m{count}_{i}.bin"));
            std::fs::write(&path, synthetic_artifact(&mut rng).to_bytes())
                .expect("write artifact");
            path
        })
        .collect()
}

/// Registers the fleet into a store with the given budget. Entries are
/// registered from their files, so they are evictable and reloadable.
fn build_store(paths: &[PathBuf], budget: Option<u64>) -> MappingStore {
    let mut store = MappingStore::with_budget(budget);
    for (i, path) in paths.iter().enumerate() {
        store
            .insert_from_file(format!("M{i}"), path.to_str().expect("utf-8 path"), None)
            .expect("fleet artifact registers");
    }
    store
}

/// The seeded skewed query stream: `total` queries drawn from a pool of
/// `distinct` blocks spread over the fleet. Ids are registration-order,
/// so the same stream is valid against every store built from `paths`.
fn workload(
    store: &MappingStore,
    total: usize,
    distinct: usize,
    seed: u64,
) -> Vec<(MappingId, Experiment)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5706_e57a_b1e5);
    let ids: Vec<MappingId> = store.ids().collect();
    let pool: Vec<(MappingId, Experiment)> = (0..distinct)
        .map(|_| {
            let id = ids[rng.gen_range(0..ids.len())];
            let num_insts = store.get(id).num_insts();
            let counts: Vec<(InstId, u32)> = (0..rng.gen_range(1..=3u32))
                .map(|_| (InstId(rng.gen_range(0..num_insts as u32)), rng.gen_range(1..=3)))
                .collect();
            (id, Experiment::from_counts(&counts))
        })
        .collect();
    (0..total).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect()
}

struct CellResult {
    checksum: u64,
    stats: ResidencyStats,
    resident: usize,
    elapsed_ns: Option<u128>,
}

/// Replays the workload against one store configuration: single worker,
/// cache off, fixed batch size — the store (and its reload path) is the
/// only variable.
fn run_cell(
    paths: &[PathBuf],
    budget: Option<u64>,
    queries: &[(MappingId, Experiment)],
    batch: usize,
    timings: bool,
) -> CellResult {
    let store = build_store(paths, budget);
    let predictor = Predictor::new(store, PredictorConfig { workers: 1, cache_capacity: 0 });
    let mut cycles: Vec<f64> = Vec::with_capacity(queries.len());
    let started = Instant::now();
    for chunk in queries.chunks(batch.max(1)) {
        for result in predictor.try_predict_routed(chunk) {
            cycles.push(result.expect("artifacts stay readable for the whole sweep"));
        }
    }
    let elapsed = started.elapsed();
    let store = predictor.snapshot();
    CellResult {
        checksum: checksum(&cycles),
        stats: store.residency_stats(),
        resident: store.resident_count(),
        elapsed_ns: timings.then_some(elapsed.as_nanos()),
    }
}

fn parse_list(args: &Args, name: &str, default: &str) -> Vec<usize> {
    args.get_str(name)
        .unwrap_or(default)
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects comma-separated integers"))
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let seed = args.seed(9);
    let total = args.get_usize("queries", 3000);
    let distinct = args.get_usize("distinct", 96).max(1);
    let batch = args.get_usize("batch", 64);
    let mappings_list = parse_list(&args, "mappings-list", "4,16,64");
    let budget_pcts = parse_list(&args, "budget-pcts", "0,25,50,100");
    let timings = args.has("timings");
    let out = args.get_str("out").unwrap_or("BENCH_store.json").to_owned();

    println!(
        "fig_store: {total} queries over {distinct} distinct blocks per fleet, \
         single worker, cache off (seed {seed})\n"
    );

    let mut table = Table::new(vec![
        "mappings", "budget", "evictions", "reloads", "resident", "checksum", "q/s",
    ]);
    let mut rows = Vec::new();
    for &count in &mappings_list {
        let paths = write_fleet(count, seed);
        let reference_store = build_store(&paths, None);
        let total_payload: u64 =
            reference_store.ids().map(|id| reference_store.get(id).payload_bytes()).sum();
        let queries = workload(&reference_store, total, distinct, seed);
        drop(reference_store);

        // The unbudgeted reference first, then every budgeted cell.
        let budgets: Vec<Option<u64>> = std::iter::once(None)
            .chain(budget_pcts.iter().map(|&pct| Some(total_payload * pct as u64 / 100)))
            .collect();
        let mut reference_checksum = None;
        for (cell, &budget) in budgets.iter().enumerate() {
            let r = run_cell(&paths, budget, &queries, batch, timings);
            match reference_checksum {
                None => reference_checksum = Some(r.checksum),
                Some(reference) => assert_eq!(
                    r.checksum, reference,
                    "a budget must never change a single answered bit \
                     ({count} mappings, budget {budget:?})"
                ),
            }
            let budget_label = match budget {
                None => "none".to_owned(),
                Some(b) => format!("{b} ({}%)", budget_pcts[cell - 1]),
            };
            let qps = r.elapsed_ns.map(|ns| total as f64 / (ns as f64 / 1e9));
            table.row(vec![
                count.to_string(),
                budget_label,
                r.stats.evictions.to_string(),
                r.stats.reloads.to_string(),
                format!("{}/{count}", r.resident),
                format!("{:016x}", r.checksum),
                qps.map(|q| format!("{q:.0}")).unwrap_or_else(|| "-".into()),
            ]);
            rows.push(Value::Obj(vec![
                ("mappings".into(), Value::UInt(count as u64)),
                (
                    "budget_pct".into(),
                    if cell == 0 {
                        Value::Null
                    } else {
                        Value::UInt(budget_pcts[cell - 1] as u64)
                    },
                ),
                ("budget_bytes".into(), budget.map_or(Value::Null, Value::UInt)),
                ("total_payload_bytes".into(), Value::UInt(total_payload)),
                ("evictions".into(), Value::UInt(r.stats.evictions)),
                ("reloads".into(), Value::UInt(r.stats.reloads)),
                ("resident_bytes".into(), Value::UInt(r.stats.resident_bytes)),
                ("name_bytes".into(), Value::UInt(r.stats.name_bytes)),
                ("resident".into(), Value::UInt(r.resident as u64)),
                ("checksum".into(), Value::UInt(r.checksum)),
                (
                    "queries_per_sec".into(),
                    qps.map(Value::Num).unwrap_or(Value::Null),
                ),
            ]));
        }
    }
    println!("{table}");

    let artifact = Value::Obj(vec![
        ("seed".into(), Value::UInt(seed)),
        ("queries".into(), Value::UInt(total as u64)),
        ("distinct".into(), Value::UInt(distinct as u64)),
        ("batch".into(), Value::UInt(batch as u64)),
        ("cells".into(), Value::Arr(rows)),
    ]);
    let text = json::write_pretty(&artifact);
    std::fs::write(&out, &text).expect("write BENCH_store.json");
    let parsed = json::parse(&text).expect("emitted artifact parses");
    let n = parsed.get("cells").and_then(Value::as_arr).expect("artifact has cells").len();
    assert_eq!(
        n,
        mappings_list.len() * (budget_pcts.len() + 1),
        "artifact covers every sweep cell"
    );
    println!("wrote {n} cells to {out}");
}
