//! Reproduces paper Table 1: the evaluated processors.
//!
//! Usage: `cargo run -p pmevo-bench --bin table1`

use pmevo_bench::{selected_platforms, Args};
use pmevo_stats::Table;

fn main() {
    let args = Args::parse();
    let platforms = selected_platforms(&args);

    let mut table = Table::new(vec!["", "SKL", "ZEN", "A72"]);
    let get = |f: &dyn Fn(&pmevo_machine::Platform) -> String| -> Vec<String> {
        platforms.iter().map(f).collect()
    };
    let mut row = |label: &str, f: &dyn Fn(&pmevo_machine::Platform) -> String| {
        let mut cells = vec![label.to_string()];
        cells.extend(get(f));
        while cells.len() < 4 {
            cells.push(String::new());
        }
        table.row(cells);
    };
    row("Manufact.", &|p| p.info().manufacturer.clone());
    row("Processor", &|p| p.info().processor.clone());
    row("Microarch.", &|p| p.info().microarch.clone());
    row("# Ports", &|p| p.info().ports_desc.clone());
    row("Instr. Set", &|p| p.info().isa_name.clone());
    row("Clock Freq.", &|p| format!("{:.1} GHz", p.info().clock_ghz));
    row("# Forms", &|p| p.isa().len().to_string());
    row("Fetch width", &|p| p.fetch_width().to_string());
    row("Sched. window", &|p| p.window_size().to_string());

    println!("Table 1: evaluated (simulated) processors\n");
    println!("{table}");
    println!("Note: physical machines are replaced by cycle-level simulators");
    println!("with hidden ground-truth port mappings (see DESIGN.md).");
}
