//! Criterion group for the batched fitness-evaluation engine (ISSUE 2):
//!
//! * `single_eval`  — one mapping × 200 experiments, naive reference vs
//!   the engine's compiled path;
//! * `batch_64x200` — a 64-candidate pool, the pre-refactor
//!   implementation (OS threads spawned per call, every evaluation
//!   re-allocating mass vectors and the zeta buffer) vs the persistent
//!   worker pool;
//! * `delta_eval`   — re-scoring a single-instruction mutation, full
//!   re-evaluation vs the inverse-index delta path.
//!
//! Besides the criterion output, `main` re-times the same six routines
//! and writes a `BENCH_fitness.json` snapshot to the workspace root so
//! later PRs have a perf trajectory to compare against.

use criterion::{criterion_group, Criterion};
use pmevo_core::json::Value;
use pmevo_core::{Experiment, InstId, MeasuredExperiment, ThreeLevelMapping};
use pmevo_evo::{ErrorCache, FitnessEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NUM_INSTS: usize = 20;
const NUM_PORTS: usize = 8;
const NUM_EXPERIMENTS: usize = 200;
const POOL_SIZE: usize = 64;

/// A 20-instruction, 8-port ground truth with 200 measured experiments
/// (singletons, then pairs in two multiplicity shapes).
fn training_set() -> (ThreeLevelMapping, Vec<MeasuredExperiment>) {
    let mut rng = StdRng::seed_from_u64(0xF17);
    let indiv = vec![1.0; NUM_INSTS];
    let gt = ThreeLevelMapping::sample_random(&mut rng, NUM_INSTS, NUM_PORTS, &indiv);
    let mut exps = Vec::new();
    for i in 0..NUM_INSTS as u32 {
        exps.push(Experiment::singleton(InstId(i)));
    }
    'pairs: for a in 0..NUM_INSTS as u32 {
        for b in (a + 1)..NUM_INSTS as u32 {
            for (m, n) in [(1, 1), (2, 1)] {
                if exps.len() >= NUM_EXPERIMENTS {
                    break 'pairs;
                }
                exps.push(Experiment::pair(InstId(a), m, InstId(b), n));
            }
        }
    }
    assert_eq!(exps.len(), NUM_EXPERIMENTS);
    let measured = exps
        .into_iter()
        .map(|e| {
            let t = gt.throughput(&e);
            MeasuredExperiment::new(e, t)
        })
        .collect();
    (gt, measured)
}

/// A pool of random candidates, as the evolutionary loop would score.
fn candidate_pool() -> Vec<ThreeLevelMapping> {
    let indiv = vec![1.0; NUM_INSTS];
    (0..POOL_SIZE)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0xBA7C4 + i as u64);
            ThreeLevelMapping::sample_random(&mut rng, NUM_INSTS, NUM_PORTS, &indiv)
        })
        .collect()
}

/// `gt` with one single-instruction mutation (the hill climber's move).
fn mutated(gt: &ThreeLevelMapping) -> ThreeLevelMapping {
    let mut m = gt.clone();
    let mut entries = m.decomposition(InstId(0)).to_vec();
    entries[0].count += 1;
    m.set_decomposition(InstId(0), entries);
    m
}

/// Frozen snapshot of the seed (pre-ISSUE-2) implementation, kept
/// verbatim as the benchmark baseline: `FitnessEvaluator::evaluate_batch`
/// spawned OS threads per call, and every evaluation re-built a
/// `MassVector`, collected a compacted copy and allocated a fresh
/// zeta-transform buffer, with one division per enumerated subset.
/// Re-deriving the baseline from today's `average_relative_error` would
/// silently inherit this PR's kernel improvements and flatter nothing —
/// the point of the group is new engine vs what the evolutionary loop
/// actually ran before.
mod pre_refactor {
    use pmevo_core::bottleneck::MassVector;
    use pmevo_core::{MeasuredExperiment, PortSet, ThreeLevelMapping, MAX_PORTS};
    use pmevo_evo::Objectives;

    fn compact(masses: &MassVector, live: PortSet) -> Vec<(u32, f64)> {
        let mut position = [0u8; MAX_PORTS];
        for (dense, p) in live.iter().enumerate() {
            position[p] = dense as u8;
        }
        masses
            .iter()
            .map(|(ports, mass)| {
                let mut mask = 0u32;
                for p in ports.iter() {
                    mask |= 1 << position[p];
                }
                (mask, mass)
            })
            .collect()
    }

    fn throughput_fast(masses: &MassVector) -> f64 {
        let live = masses.live_ports();
        let k = live.len();
        if k == 0 {
            return 0.0;
        }
        let size = 1usize << k;
        let mut sum = vec![0.0f64; size];
        for (mask, mass) in compact(masses, live) {
            sum[mask as usize] += mass;
        }
        for bit in 0..k {
            let b = 1usize << bit;
            for q in 0..size {
                if q & b != 0 {
                    sum[q] += sum[q ^ b];
                }
            }
        }
        let mut best = 0.0f64;
        for (q, &s) in sum.iter().enumerate().skip(1) {
            let t = s / (q.count_ones() as f64);
            if t > best {
                best = t;
            }
        }
        best
    }

    fn average_relative_error(
        mapping: &ThreeLevelMapping,
        experiments: &[MeasuredExperiment],
    ) -> f64 {
        let sum: f64 = experiments
            .iter()
            .map(|me| {
                let predicted = throughput_fast(&mapping.uop_masses(&me.experiment));
                (predicted - me.throughput).abs() / me.throughput
            })
            .sum();
        sum / experiments.len() as f64
    }

    pub fn evaluate(mapping: &ThreeLevelMapping, experiments: &[MeasuredExperiment]) -> Objectives {
        Objectives {
            error: average_relative_error(mapping, experiments),
            volume: mapping.volume(),
        }
    }

    pub fn evaluate_batch(
        experiments: &[MeasuredExperiment],
        mappings: &[ThreeLevelMapping],
        num_threads: usize,
    ) -> Vec<Objectives> {
        let threads = num_threads.min(mappings.len());
        if threads == 1 {
            return mappings.iter().map(|m| evaluate(m, experiments)).collect();
        }
        let chunk = mappings.len().div_ceil(threads);
        let mut out = Vec::with_capacity(mappings.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = mappings
                .chunks(chunk)
                .map(|ms| {
                    scope.spawn(move || {
                        ms.iter()
                            .map(|m| evaluate(m, experiments))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("fitness worker panicked"));
            }
        });
        out
    }
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn bench_fitness_engine(c: &mut Criterion) {
    let (gt, measured) = training_set();
    let pool = Arc::new(candidate_pool());
    let mutant = mutated(&gt);
    let mut engine = FitnessEngine::new(&measured, threads());
    let mut engine1 = FitnessEngine::new(&measured, 1);
    let cache = engine1.build_cache(&gt);

    let mut group = c.benchmark_group("fitness_engine");
    group.bench_function("single_eval/legacy", |b| {
        b.iter(|| black_box(pre_refactor::evaluate(&gt, &measured).error))
    });
    group.bench_function("single_eval/engine", |b| {
        b.iter(|| black_box(engine1.evaluate(&gt).error))
    });
    group.sample_size(20);
    group.bench_function("batch_64x200/legacy", |b| {
        b.iter(|| black_box(pre_refactor::evaluate_batch(&measured, &pool, threads()).len()))
    });
    group.bench_function("batch_64x200/engine", |b| {
        b.iter(|| black_box(engine.evaluate_batch(&pool).len()))
    });
    group.sample_size(100);
    group.bench_function("delta_eval/full_reeval", |b| {
        b.iter(|| black_box(pre_refactor::evaluate(&mutant, &measured).error))
    });
    group.bench_function("delta_eval/engine", |b| {
        b.iter(|| black_box(engine1.try_update(&mutant, &cache, InstId(0)).error))
    });
    group.finish();
}

criterion_group!(benches, bench_fitness_engine);

/// Times `f` for roughly `budget` and returns the mean ns per call.
fn mean_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget || iters == 0 {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn snapshot_entry(label: &str, legacy_ns: f64, engine_ns: f64) -> Value {
    Value::Obj(vec![
        (format!("{label}_legacy_ns"), Value::Num(legacy_ns.round())),
        (format!("{label}_engine_ns"), Value::Num(engine_ns.round())),
        (
            format!("{label}_speedup"),
            Value::Num((legacy_ns / engine_ns * 100.0).round() / 100.0),
        ),
    ])
}

/// Re-times the six routines and writes `BENCH_fitness.json` at the
/// workspace root, the perf-trajectory artifact for later PRs.
fn write_snapshot() {
    let (gt, measured) = training_set();
    let pool = Arc::new(candidate_pool());
    let mutant = mutated(&gt);
    let mut engine = FitnessEngine::new(&measured, threads());
    let mut engine1 = FitnessEngine::new(&measured, 1);
    let cache: ErrorCache = engine1.build_cache(&gt);
    let budget = Duration::from_millis(300);

    let single_legacy = mean_ns(budget, || {
        black_box(pre_refactor::evaluate(&gt, &measured).error);
    });
    let single_engine = mean_ns(budget, || {
        black_box(engine1.evaluate(&gt).error);
    });
    let batch_legacy = mean_ns(budget, || {
        black_box(pre_refactor::evaluate_batch(&measured, &pool, threads()).len());
    });
    let batch_engine = mean_ns(budget, || {
        black_box(engine.evaluate_batch(&pool).len());
    });
    let delta_full = mean_ns(budget, || {
        black_box(pre_refactor::evaluate(&mutant, &measured).error);
    });
    let delta_engine = mean_ns(budget, || {
        black_box(engine1.try_update(&mutant, &cache, InstId(0)).error);
    });

    let mut fields = vec![
        ("workload".to_string(),
         Value::Str(format!(
             "{POOL_SIZE} candidates x {NUM_EXPERIMENTS} experiments, {NUM_INSTS} insts, {NUM_PORTS} ports"
         ))),
        ("threads".to_string(), Value::UInt(threads() as u64)),
    ];
    for entry in [
        snapshot_entry("single_eval", single_legacy, single_engine),
        snapshot_entry("batch_64x200", batch_legacy, batch_engine),
        snapshot_entry("delta_eval", delta_full, delta_engine),
    ] {
        if let Value::Obj(kvs) = entry {
            fields.extend(kvs);
        }
    }
    let json = pmevo_core::json::write_pretty(&Value::Obj(fields));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fitness.json");
    std::fs::write(path, json + "\n").expect("write BENCH_fitness.json");
    println!("snapshot written to {path}");
    println!(
        "batch_64x200 speedup: {:.2}x  (legacy {:.1} ms -> engine {:.1} ms)",
        batch_legacy / batch_engine,
        batch_legacy / 1e6,
        batch_engine / 1e6
    );
}

fn main() {
    benches();
    write_snapshot();
}
