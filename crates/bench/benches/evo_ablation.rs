//! Ablation benches for the design decisions called out in DESIGN.md §5:
//!
//! * fitness evaluation with the fast bottleneck algorithm vs the naive
//!   rescan vs the LP solver (the paper's central performance claim:
//!   fitness evaluation speed bounds achievable quality);
//! * evolution with and without the mutation operator (the paper dropped
//!   mutation, §4.4);
//! * pipeline with and without congruence filtering (§4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use pmevo_core::bottleneck::{lp_throughput, throughput_naive};
use pmevo_core::{Experiment, InstId, MeasuredExperiment, ThreeLevelMapping};
use pmevo_evo::{average_relative_error, evolve, EvoConfig, FitnessEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A 12-instruction, 6-port ground truth with measured experiments.
fn training_set() -> (ThreeLevelMapping, Vec<MeasuredExperiment>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(42);
    let indiv = vec![1.0; 12];
    let gt = ThreeLevelMapping::sample_random(&mut rng, 12, 6, &indiv);
    let mut experiments = Vec::new();
    for i in 0..12u32 {
        experiments.push(Experiment::singleton(InstId(i)));
    }
    for a in 0..12u32 {
        for b in (a + 1)..12 {
            experiments.push(Experiment::pair(InstId(a), 1, InstId(b), 1));
            experiments.push(Experiment::pair(InstId(a), 1, InstId(b), 2));
        }
    }
    let measured: Vec<MeasuredExperiment> = experiments
        .into_iter()
        .map(|e| {
            let t = gt.throughput(&e);
            MeasuredExperiment::new(e, t)
        })
        .collect();
    let tp: Vec<f64> = (0..12u32)
        .map(|i| gt.throughput(&Experiment::singleton(InstId(i))))
        .collect();
    (gt, measured, tp)
}

fn bench_fitness_engines(c: &mut Criterion) {
    let (gt, measured, _) = training_set();
    let mut group = c.benchmark_group("fitness_davg");
    group.bench_function("bottleneck_fast", |b| {
        b.iter(|| black_box(average_relative_error(&gt, &measured)))
    });
    group.bench_function("compiled_engine", |b| {
        let mut engine = FitnessEngine::new(&measured, 1);
        b.iter(|| black_box(engine.evaluate(&gt).error))
    });
    group.bench_function("bottleneck_naive", |b| {
        b.iter(|| {
            let sum: f64 = measured
                .iter()
                .map(|me| {
                    let p = throughput_naive(&gt.uop_masses(&me.experiment));
                    (p - me.throughput).abs() / me.throughput
                })
                .sum();
            black_box(sum / measured.len() as f64)
        })
    });
    group.bench_function("lp_solver", |b| {
        b.iter(|| {
            let sum: f64 = measured
                .iter()
                .map(|me| {
                    let p = lp_throughput(&gt.uop_masses(&me.experiment));
                    (p - me.throughput).abs() / me.throughput
                })
                .sum();
            black_box(sum / measured.len() as f64)
        })
    });
    group.finish();
}

fn bench_mutation_ablation(c: &mut Criterion) {
    let (_, measured, tp) = training_set();
    let mut group = c.benchmark_group("evolution");
    group.sample_size(10);
    for (label, rate) in [("no_mutation", 0.0), ("with_mutation", 0.1)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = EvoConfig {
                    population_size: 40,
                    max_generations: 10,
                    mutation_rate: rate,
                    num_threads: 1,
                    seed: 5,
                    ..EvoConfig::default()
                };
                black_box(evolve(12, 6, &measured, &tp, &config).objectives.error)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fitness_engines, bench_mutation_ablation);
criterion_main!(benches);
