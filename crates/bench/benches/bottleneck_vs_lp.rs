//! Criterion bench behind Figure 8: the bottleneck simulation algorithm
//! (fast zeta-transform variant and naive rescan variant) against the
//! simplex LP solver, across port counts and experiment lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmevo_bench::sample_experiments;
use pmevo_core::bottleneck::{lp_throughput, throughput_fast, throughput_naive, MassVector};
use pmevo_core::ThreeLevelMapping;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const NUM_INSTS: usize = 100;

fn mass_vectors(num_ports: usize, exp_len: u32, count: usize, seed: u64) -> Vec<MassVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let indiv = vec![1.0; NUM_INSTS];
    let mapping = ThreeLevelMapping::sample_random(&mut rng, NUM_INSTS, num_ports, &indiv);
    sample_experiments(NUM_INSTS, exp_len, count, seed ^ 0x5EED)
        .iter()
        .map(|e| mapping.uop_masses(e))
        .collect()
}

fn bench_ports(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_ports");
    for ports in [4usize, 6, 8, 10, 12, 14] {
        let inputs = mass_vectors(ports, 4, 16, ports as u64);
        group.bench_with_input(BenchmarkId::new("bottleneck_fast", ports), &inputs, |b, mv| {
            b.iter(|| {
                for m in mv {
                    black_box(throughput_fast(m));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("bottleneck_naive", ports), &inputs, |b, mv| {
            b.iter(|| {
                for m in mv {
                    black_box(throughput_naive(m));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("lp_solver", ports), &inputs, |b, mv| {
            b.iter(|| {
                for m in mv {
                    black_box(lp_throughput(m));
                }
            })
        });
    }
    group.finish();
}

fn bench_lengths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_lengths");
    for len in [1u32, 2, 4, 6, 8, 10] {
        let inputs = mass_vectors(10, len, 16, 100 + u64::from(len));
        group.bench_with_input(BenchmarkId::new("bottleneck_fast", len), &inputs, |b, mv| {
            b.iter(|| {
                for m in mv {
                    black_box(throughput_fast(m));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("lp_solver", len), &inputs, |b, mv| {
            b.iter(|| {
                for m in mv {
                    black_box(lp_throughput(m));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ports, bench_lengths);
criterion_main!(benches);
