//! # pmevo-serve — the long-lived prediction daemon
//!
//! `pmevo-cli predict` serves one client through a stdin/stdout pipe;
//! this crate promotes that serving path to a persistent daemon that
//! multiplexes many concurrent clients over TCP and Unix sockets.
//!
//! ## Wire protocol
//!
//! The protocol is deliberately the CLI's pipe, framed over a socket:
//! newline-delimited text in, newline-delimited compact JSON records
//! out. A request line is either
//!
//! * a **sequence line** of the shared grammar
//!   ([`pmevo_core::parse_sequence`]), optionally prefixed with
//!   `PLATFORM:` to route to a specific stored mapping — answered with
//!   the same [`pmevo_core::ServeRecord`] JSON that `pmevo-cli predict`
//!   prints (`{"line":N,"mapping":"NAME@V","cycles":T}` or
//!   `{"line":N,"error":"..."}`, where `N` counts the *client's* input
//!   lines), so a client's response stream is byte-identical to the
//!   offline run of the same lines; or
//! * a **control line** starting with `!`
//!   ([`pmevo_core::parse_control`]): `!stats`, `!mappings`,
//!   `!reload NAME=file.json` or `!shutdown`.
//!
//! ## Architecture
//!
//! Each connection gets a *reader* and a *writer* thread; readers parse
//! and route lines, then push submissions into one shared queue. A
//! single *coalescer* thread drains that queue, merging small per-client
//! windows into one batch through the [`pmevo_predict::Predictor`]
//! worker pool (the cached batch path is ~31× faster than per-sequence
//! dispatch, so cross-connection coalescing is what keeps throughput up
//! under many small clients), bounded by a max-batch/max-delay policy
//! ([`ServeConfig`]). Control verbs act as barriers: the window in
//! flight is flushed first, so per-client response order is always input
//! order.
//!
//! Backpressure is per connection: each connection may have at most
//! [`ServeConfig::max_inflight`] unanswered lines, enforced by a gate
//! the reader blocks on — a slow or stalled *client* throttles only its
//! own socket, never the daemon. Hot reload goes through
//! [`pmevo_predict::Predictor::insert_mapping`]: the new store is
//! swapped in atomically and batches in flight drain against the
//! snapshot they started with.

#![deny(missing_docs)]

pub mod flags;
mod server;
mod specs;

pub use server::{Server, ServeConfig};
pub use specs::{load_spec_artifact, route_line, store_from_specs};
