//! `pmevo-serve` — the long-lived throughput-prediction daemon.
//!
//! ```text
//! pmevo-serve --mapping TINY=tiny.json [--mapping SKL=skl.json ...]
//!             [--tcp 127.0.0.1:7077] [--unix /tmp/pmevo.sock]
//!             [--jobs N] [--cache N] [--max-batch N] [--max-delay-ms N]
//!             [--inflight N] [--store-budget BYTES]
//! ```
//!
//! See the `pmevo-serve` library crate docs for the wire protocol.

use pmevo_serve::flags::{byte_flag, flag, flag_all, num_flag, positive_flag};
use pmevo_serve::{store_from_specs, ServeConfig, Server};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pmevo-serve --mapping NAME=file.json [--mapping ...] \
         [--tcp ADDR] [--unix PATH]\n\
         \n\
         options:\n\
         \x20 --mapping NAME=file.json  mapping artifact to serve (repeatable; required)\n\
         \x20 --tcp ADDR                listen on a TCP address, e.g. 127.0.0.1:7077\n\
         \x20 --unix PATH               listen on a Unix socket path\n\
         \x20 --jobs N                  predictor worker threads (default: cores)\n\
         \x20 --cache N                 LRU cache capacity per mapping (default 65536)\n\
         \x20 --max-batch N             largest coalesced batch (default 1024)\n\
         \x20 --max-delay-ms N          coalescing window in milliseconds (default 1)\n\
         \x20 --inflight N              per-connection unanswered-line cap (default 1024)\n\
         \x20 --store-budget BYTES      mapping-payload memory budget (k/m/g suffixes;\n\
         \x20                           evicted payloads reload lazily from their artifacts)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        let _ = usage();
        return ExitCode::SUCCESS;
    }

    let defaults = ServeConfig::default();
    let config = match (|| -> Result<ServeConfig, String> {
        Ok(ServeConfig {
            workers: positive_flag(&args, "--jobs", defaults.workers)?,
            cache_capacity: num_flag(&args, "--cache", defaults.cache_capacity)?,
            max_batch: positive_flag(&args, "--max-batch", defaults.max_batch)?,
            max_delay: Duration::from_millis(num_flag(&args, "--max-delay-ms", 1u64)?),
            max_inflight: positive_flag(&args, "--inflight", defaults.max_inflight)?,
        })
    })() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let budget = match byte_flag(&args, "--store-budget") {
        Ok(budget) => budget,
        Err(message) => {
            eprintln!("{message}");
            return usage();
        }
    };
    let store = match store_from_specs(&flag_all(&args, "--mapping"), budget) {
        Ok(store) => store,
        Err(message) => {
            eprintln!("error: {message}");
            return usage();
        }
    };

    let tcp_addr = flag(&args, "--tcp");
    let unix_path = flag(&args, "--unix");
    if tcp_addr.is_none() && unix_path.is_none() {
        eprintln!("error: at least one of --tcp ADDR or --unix PATH is required");
        return usage();
    }

    let server = match Server::new(store, config) {
        Ok(server) => server,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(addr) = tcp_addr {
        match TcpListener::bind(&addr) {
            Ok(listener) => {
                // Report the bound address, not the requested one, so
                // `--tcp 127.0.0.1:0` scripts can learn the port.
                match listener.local_addr() {
                    Ok(local) => eprintln!("pmevo-serve: listening on tcp://{local}"),
                    Err(_) => eprintln!("pmevo-serve: listening on tcp://{addr}"),
                }
                server.listen_tcp(listener);
            }
            Err(e) => {
                eprintln!("error: cannot bind tcp {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    #[cfg(unix)]
    let unix_sock = unix_path.clone();
    #[cfg(unix)]
    if let Some(path) = &unix_sock {
        // A stale socket file from a previous run would make bind fail;
        // remove it first.
        let _ = std::fs::remove_file(path);
        match std::os::unix::net::UnixListener::bind(path) {
            Ok(listener) => {
                eprintln!("pmevo-serve: listening on unix://{path}");
                server.listen_unix(listener);
            }
            Err(e) => {
                eprintln!("error: cannot bind unix socket {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(not(unix))]
    if unix_path.is_some() {
        eprintln!("error: --unix is only supported on Unix platforms");
        return ExitCode::FAILURE;
    }

    eprintln!("pmevo-serve: ready ({} mappings loaded)", server.predictor().snapshot().len());
    server.join();
    #[cfg(unix)]
    if let Some(path) = &unix_sock {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("pmevo-serve: shut down cleanly");
    ExitCode::SUCCESS
}
