//! Panic-free argv helpers shared by the serving binaries.
//!
//! A serving binary must not abort with a backtrace on malformed flags;
//! these helpers turn every parse failure into an `Err(String)` the
//! caller prints alongside its usage text before exiting nonzero.

use std::fmt::Display;
use std::str::FromStr;

/// The value following the first occurrence of `name`.
pub fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The values following every occurrence of `name`, in order.
pub fn flag_all(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

/// Parses the numeric flag `name`, falling back to `default` when the
/// flag is absent.
///
/// # Errors
///
/// `error: --jobs expects a number, got "abc"`-style message when the
/// value does not parse.
pub fn num_flag<T: FromStr + Display>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("error: {name} expects a number, got {v:?}")),
    }
}

/// [`num_flag`] for counts that must be at least 1 (worker pools, batch
/// windows: a zero silently degenerates — e.g. `--batch 0` would make
/// every flush threshold trivially true — so it is rejected loudly).
///
/// # Errors
///
/// As [`num_flag`], plus `error: --jobs must be at least 1, got 0`.
pub fn positive_flag(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match num_flag(args, name, default)? {
        0 => Err(format!("error: {name} must be at least 1, got 0")),
        n => Ok(n),
    }
}

/// Parses the byte-count flag `name` (`--store-budget 64m`): a plain
/// number of bytes, optionally suffixed `k`/`m`/`g` (case-insensitive,
/// powers of 1024). Absent means `None` — no budget.
///
/// # Errors
///
/// `error: --store-budget expects bytes (with an optional k/m/g
/// suffix), got "..."` on malformed values and on multiplier overflow.
pub fn byte_flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    let Some(v) = flag(args, name) else {
        return Ok(None);
    };
    let bad = || format!("error: {name} expects bytes (with an optional k/m/g suffix), got {v:?}");
    let (digits, shift) = match v.char_indices().last() {
        Some((i, c)) if c.eq_ignore_ascii_case(&'k') => (&v[..i], 10),
        Some((i, c)) if c.eq_ignore_ascii_case(&'m') => (&v[..i], 20),
        Some((i, c)) if c.eq_ignore_ascii_case(&'g') => (&v[..i], 30),
        _ => (v.as_str(), 0),
    };
    let n: u64 = digits.trim().parse().map_err(|_| bad())?;
    n.checked_shl(shift)
        .filter(|scaled| scaled >> shift == n)
        .map(Some)
        .ok_or_else(bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_resolve_first_and_all_occurrences() {
        let a = args(&["--mapping", "A=a.json", "--jobs", "4", "--mapping", "B=b.json"]);
        assert_eq!(flag(&a, "--jobs").as_deref(), Some("4"));
        assert_eq!(flag(&a, "--cache"), None);
        assert_eq!(flag_all(&a, "--mapping"), args(&["A=a.json", "B=b.json"]));
    }

    #[test]
    fn num_flag_defaults_parses_and_reports() {
        let a = args(&["--jobs", "4", "--cache", "abc"]);
        assert_eq!(num_flag(&a, "--jobs", 1usize), Ok(4));
        assert_eq!(num_flag(&a, "--batch", 1024usize), Ok(1024));
        assert_eq!(
            num_flag(&a, "--cache", 0usize),
            Err("error: --cache expects a number, got \"abc\"".to_string())
        );
        // A flag given as the last token has no value to parse.
        let trailing = args(&["--jobs"]);
        assert_eq!(num_flag(&trailing, "--jobs", 7usize), Ok(7));
    }

    #[test]
    fn byte_flag_scales_suffixes_and_rejects_junk() {
        let a = args(&["--store-budget", "64M"]);
        assert_eq!(byte_flag(&a, "--store-budget"), Ok(Some(64 << 20)));
        assert_eq!(byte_flag(&a, "--other"), Ok(None));
        for (v, want) in [("4096", 4096u64), ("2k", 2 << 10), ("1g", 1 << 30), ("0", 0)] {
            let a = args(&["--store-budget", v]);
            assert_eq!(byte_flag(&a, "--store-budget"), Ok(Some(want)), "{v}");
        }
        for v in ["abc", "12q", "-5", "", "999999999999g"] {
            let a = args(&["--store-budget", v]);
            let err = byte_flag(&a, "--store-budget").unwrap_err();
            assert!(err.contains("expects bytes"), "{v}: {err}");
        }
    }

    #[test]
    fn positive_flag_rejects_zero() {
        let a = args(&["--jobs", "0", "--batch", "16"]);
        assert_eq!(
            positive_flag(&a, "--jobs", 1),
            Err("error: --jobs must be at least 1, got 0".to_string())
        );
        assert_eq!(positive_flag(&a, "--batch", 1024), Ok(16));
        assert_eq!(positive_flag(&a, "--inflight", 256), Ok(256));
    }
}
