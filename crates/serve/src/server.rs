//! The daemon: per-connection reader/writer threads, a shared submission
//! queue, one coalescer thread batching across connections, and the
//! control plane (stats, hot reload, shutdown).

use crate::specs::{load_spec_artifact, route_line};
use pmevo_core::json::{self, Value};
use pmevo_core::{parse_control, ControlVerb, Experiment, SequenceParseError, ServeRecord};
use pmevo_predict::{MappingId, MappingStore, PredictStats, Predictor, PredictorConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads of the underlying [`Predictor`] pool.
    pub workers: usize,
    /// LRU result-cache capacity per stored mapping (0 disables caching).
    pub cache_capacity: usize,
    /// Largest cross-connection batch the coalescer submits at once.
    pub max_batch: usize,
    /// Longest the coalescer waits for more submissions after the first
    /// one of a window. `0` means "take whatever is queued right now".
    pub max_delay: Duration,
    /// Per-connection cap on unanswered lines: a client that stops
    /// reading responses blocks only its own reader once it has this
    /// many in flight, never the shared queue.
    pub max_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            cache_capacity: 1 << 16,
            max_batch: 1024,
            max_delay: Duration::from_millis(1),
            max_inflight: 1024,
        }
    }
}

/// Per-connection backpressure gate: at most `cap` submitted-but-
/// unanswered lines. The reader acquires before submitting; the writer
/// releases after each response record reaches the socket buffer.
struct Gate {
    cap: usize,
    inflight: Mutex<usize>,
    changed: Condvar,
    /// Set when the writer is gone — wakes and cancels blocked readers
    /// so a dead connection cannot park a thread forever.
    closed: AtomicBool,
}

impl Gate {
    fn new(cap: usize) -> Arc<Gate> {
        Arc::new(Gate {
            cap: cap.max(1),
            inflight: Mutex::new(0),
            changed: Condvar::new(),
            closed: AtomicBool::new(false),
        })
    }

    /// Blocks until a slot frees up. Returns `false` (no slot taken)
    /// when the connection or the whole daemon is shutting down.
    fn acquire(&self, abort: &AtomicBool) -> bool {
        let mut inflight = self.inflight.lock().expect("gate poisoned");
        loop {
            if self.closed.load(Ordering::Relaxed) || abort.load(Ordering::Relaxed) {
                return false;
            }
            if *inflight < self.cap {
                *inflight += 1;
                return true;
            }
            // Bounded waits so the abort flag is observed even if the
            // writer died without a close (defense in depth).
            let (guard, _) = self
                .changed
                .wait_timeout(inflight, Duration::from_millis(100))
                .expect("gate poisoned");
            inflight = guard;
        }
    }

    fn release(&self) {
        let mut inflight = self.inflight.lock().expect("gate poisoned");
        *inflight = inflight.saturating_sub(1);
        self.changed.notify_one();
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        self.changed.notify_all();
    }
}

/// What one input line asks for.
enum Payload {
    /// A routed, parsed sequence line.
    Seq(MappingId, Experiment),
    /// A line that failed routing/parsing — answered with an error
    /// record *in order*, so it rides the queue like everything else.
    Failed(String),
    /// A control verb; the coalescer flushes the window in flight first
    /// (barrier), then acks so the submitting reader resumes.
    Control(ControlVerb, Sender<()>),
}

/// One unit on the shared submission queue.
struct Submission {
    /// Client-side 1-based input line number.
    line: u64,
    payload: Payload,
    /// The submitting connection's response channel.
    reply: SyncSender<String>,
    /// The submitting connection's backpressure gate (released by the
    /// writer once the response is written).
    gate: Arc<Gate>,
}

/// Counters that are the daemon's, not the predictor's.
struct DaemonStats {
    live_connections: AtomicU64,
    total_connections: AtomicU64,
    coalesced_windows: AtomicU64,
    /// Windows merging submissions from more than one connection —
    /// direct evidence the coalescer is doing its job.
    cross_connection_windows: AtomicU64,
}

/// The predictor counters and wall-clock time at the previous `!stats`
/// call — the baseline the per-window hit/miss split is computed
/// against. Each `!stats` response reports the delta since the last one
/// and resets the baseline, so operators polling the verb see *recent*
/// traffic shape (has it fallen off the cached path?), not the
/// since-boot average.
struct WindowBaseline {
    stats: PredictStats,
    at: Instant,
}

struct Shared {
    predictor: Predictor,
    /// Unprefixed lines route to the latest version of this name (the
    /// first-loaded mapping, same rule as `pmevo-cli predict`).
    default_name: String,
    config: ServeConfig,
    stats: DaemonStats,
    window: Mutex<WindowBaseline>,
    shutdown: AtomicBool,
    started: Instant,
}

/// A running prediction daemon. See the crate docs for the protocol.
///
/// Listeners are attached with [`listen_tcp`](Server::listen_tcp) /
/// [`listen_unix`](Server::listen_unix) (any number, concurrently); the
/// daemon runs until a client sends `!shutdown` or [`stop`](Server::stop)
/// is called, then [`join`](Server::join) reaps every thread.
pub struct Server {
    shared: Arc<Shared>,
    submit: Sender<Submission>,
    coalescer: Option<JoinHandle<()>>,
    listeners: Mutex<Vec<JoinHandle<()>>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Stands up a daemon over `store`.
    ///
    /// # Errors
    ///
    /// `at least one --mapping NAME=file.json is required` when the
    /// store is empty — a serving process must have something to answer
    /// from (and refusing here is what keeps the serving path free of
    /// the old `expect("store is non-empty")` panic).
    pub fn new(store: MappingStore, config: ServeConfig) -> Result<Server, String> {
        let Some(first) = store.ids().next() else {
            return Err("at least one --mapping NAME=file.json is required".to_string());
        };
        let default_name = store.get(first).name().to_owned();
        let predictor = Predictor::new(
            store,
            PredictorConfig { workers: config.workers, cache_capacity: config.cache_capacity },
        );
        let started = Instant::now();
        let shared = Arc::new(Shared {
            predictor,
            default_name,
            config,
            stats: DaemonStats {
                live_connections: AtomicU64::new(0),
                total_connections: AtomicU64::new(0),
                coalesced_windows: AtomicU64::new(0),
                cross_connection_windows: AtomicU64::new(0),
            },
            window: Mutex::new(WindowBaseline { stats: PredictStats::default(), at: started }),
            shutdown: AtomicBool::new(false),
            started,
        });
        let (submit, queue) = channel();
        let coalescer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || coalesce_loop(&shared, &queue))
        };
        Ok(Server {
            shared,
            submit,
            coalescer: Some(coalescer),
            listeners: Mutex::new(Vec::new()),
            connections: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The predictor behind the daemon (snapshots, counters).
    pub fn predictor(&self) -> &Predictor {
        &self.shared.predictor
    }

    /// Whether shutdown has been requested (verb or [`stop`](Server::stop)).
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Serves one already-established connection: spawns its reader and
    /// writer threads. `reader`/`writer` are the two directions of the
    /// same socket (e.g. a [`std::net::TcpStream`] and its
    /// `try_clone`); both should carry read/write timeouts so a dead
    /// peer cannot park the threads past shutdown.
    pub fn handle_connection<R, W>(&self, reader: R, writer: W)
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        handle_connection_on(
            &self.shared,
            &self.submit,
            &self.connections,
            Box::new(reader),
            Box::new(writer),
        );
    }

    /// Accepts TCP connections until shutdown. The listener is switched
    /// to non-blocking so the loop can observe the shutdown flag.
    pub fn listen_tcp(&self, listener: TcpListener) {
        listener.set_nonblocking(true).expect("listener into non-blocking mode");
        let accept = self.spawn_acceptor(move || match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
                stream.set_write_timeout(Some(Duration::from_secs(30))).ok();
                let reader = stream.try_clone().ok()?;
                Some((Box::new(reader) as Box<dyn Read + Send>, Box::new(stream) as Box<dyn Write + Send>))
            }
            Err(_) => None,
        });
        self.listeners.lock().expect("listener registry poisoned").push(accept);
    }

    /// Accepts Unix-socket connections until shutdown, like
    /// [`listen_tcp`](Server::listen_tcp).
    #[cfg(unix)]
    pub fn listen_unix(&self, listener: UnixListener) {
        listener.set_nonblocking(true).expect("listener into non-blocking mode");
        let accept = self.spawn_acceptor(move || match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
                stream.set_write_timeout(Some(Duration::from_secs(30))).ok();
                let reader = stream.try_clone().ok()?;
                Some((Box::new(reader) as Box<dyn Read + Send>, Box::new(stream) as Box<dyn Write + Send>))
            }
            Err(_) => None,
        });
        self.listeners.lock().expect("listener registry poisoned").push(accept);
    }

    fn spawn_acceptor<F>(&self, mut accept: F) -> JoinHandle<()>
    where
        F: FnMut() -> Option<(Box<dyn Read + Send>, Box<dyn Write + Send>)> + Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        let submit = self.submit.clone();
        let connections = Arc::clone(&self.connections);
        std::thread::spawn(move || {
            while !shared.shutdown.load(Ordering::Relaxed) {
                match accept() {
                    Some((reader, writer)) => {
                        handle_connection_on(&shared, &submit, &connections, reader, writer);
                    }
                    None => std::thread::sleep(POLL_INTERVAL),
                }
            }
        })
    }

    /// Requests shutdown programmatically (equivalent to a client's
    /// `!shutdown`) and returns once the coalescer has acknowledged it.
    pub fn stop(&self) {
        let (ack_tx, ack_rx) = channel();
        let (reply, _discard) = mpsc::sync_channel(1);
        let sent = self
            .submit
            .send(Submission {
                line: 0,
                payload: Payload::Control(ControlVerb::Shutdown, ack_tx),
                reply,
                gate: Gate::new(1),
            })
            .is_ok();
        if sent {
            let _ = ack_rx.recv();
        }
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Joins every daemon thread: listeners, the coalescer, then all
    /// connection reader/writer threads. Call after shutdown has been
    /// requested; connections drain their queued responses first.
    pub fn join(mut self) {
        for handle in self.listeners.lock().expect("listener registry poisoned").drain(..) {
            let _ = handle.join();
        }
        // Dropping the master submission sender (after the listeners are
        // gone) lets the coalescer observe disconnect-at-idle; on
        // `!shutdown` it has already broken out of its loop.
        drop(std::mem::replace(&mut self.submit, channel().0));
        if let Some(coalescer) = self.coalescer.take() {
            let _ = coalescer.join();
        }
        let handles: Vec<JoinHandle<()>> =
            self.connections.lock().expect("connection registry poisoned").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// How often blocked reads and accept loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// `Server::handle_connection`, callable from acceptor threads that only
/// hold the shared pieces.
fn handle_connection_on(
    shared: &Arc<Shared>,
    submit: &Sender<Submission>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
) {
    shared.stats.total_connections.fetch_add(1, Ordering::Relaxed);
    shared.stats.live_connections.fetch_add(1, Ordering::Relaxed);
    let gate = Gate::new(shared.config.max_inflight);
    // Response capacity == gate capacity: the coalescer's try_send
    // cannot overflow a channel whose slots are gated one-per-line.
    let (reply, responses) = mpsc::sync_channel::<String>(shared.config.max_inflight);

    let mut threads = connections.lock().expect("connection registry poisoned");
    threads.push({
        let shared = Arc::clone(shared);
        let submit = submit.clone();
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || read_loop(&shared, &submit, reader, &reply, &gate))
    });
    threads.push({
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            write_loop(&responses, writer, &gate);
            gate.close();
            shared.stats.live_connections.fetch_sub(1, Ordering::Relaxed);
        })
    });
}

/// Reads lines off one connection, routes/parses them, and feeds the
/// shared submission queue. Blank and comment-only lines produce no
/// submission (and no response), exactly like the offline pipe.
fn read_loop<R: Read>(
    shared: &Shared,
    submit: &Sender<Submission>,
    reader: R,
    reply: &SyncSender<String>,
    gate: &Arc<Gate>,
) {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) || gate.closed.load(Ordering::Relaxed) {
            break;
        }
        match reader.read_line(&mut line) {
            // EOF with nothing pending: client is done sending. A final
            // unterminated line (non-empty `line`) still gets processed;
            // the next call returns `Ok(0)` again and breaks.
            Ok(0) if line.is_empty() => break,
            Ok(_) => {}
            // Read timeout: loop to re-check the shutdown flag. The
            // timeout may land mid-line, with a partial prefix already
            // appended to `line` — it must NOT be cleared, or the rest
            // of the line would later parse as a line of its own. The
            // next successful read appends the remainder.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
        line_no += 1;
        // Take the line out (leaving `line` empty for the next read) so
        // every `continue` below starts the next iteration clean.
        let owned = std::mem::take(&mut line);
        let text = owned.trim_end_matches(['\n', '\r']);

        let payload = if let Some(control) = parse_control(text) {
            match control {
                Ok(verb) => {
                    let (ack_tx, ack_rx) = channel();
                    if !gate.acquire(&shared.shutdown) {
                        break;
                    }
                    let wants_shutdown = matches!(verb, ControlVerb::Shutdown);
                    if submit
                        .send(Submission {
                            line: line_no,
                            payload: Payload::Control(verb, ack_tx),
                            reply: reply.clone(),
                            gate: Arc::clone(gate),
                        })
                        .is_err()
                    {
                        break;
                    }
                    // Wait for the barrier: lines after a control verb
                    // must observe its effect (reload routing, stats
                    // counts), so the reader stalls until it is applied.
                    let _ = ack_rx.recv();
                    if wants_shutdown {
                        break;
                    }
                    continue;
                }
                Err(message) => Payload::Failed(message),
            }
        } else {
            let store = shared.predictor.snapshot();
            match route_line(&store, &shared.default_name, text) {
                None => Payload::Failed(format!(
                    "no mapping registered under {:?}",
                    shared.default_name
                )),
                Some((id, seq_text)) => match store.get(id).parse(seq_text) {
                    Ok(seq) => Payload::Seq(id, seq),
                    Err(SequenceParseError::Empty) => continue, // blank/comment line
                    Err(err) => Payload::Failed(err.to_string()),
                },
            }
        };
        if !gate.acquire(&shared.shutdown) {
            break;
        }
        if submit
            .send(Submission { line: line_no, payload, reply: reply.clone(), gate: Arc::clone(gate) })
            .is_err()
        {
            break;
        }
    }
    // Dropping our `reply` clone (and the ones riding queued
    // submissions, as they are answered) is what closes the writer.
}

/// Writes response records to one connection, releasing the gate per
/// record. Exits when every reply sender is gone (reader done + queue
/// drained) or the socket dies.
fn write_loop<W: Write>(responses: &Receiver<String>, writer: W, gate: &Gate) {
    let mut out = std::io::BufWriter::new(writer);
    while let Ok(record) = responses.recv() {
        if writeln!(out, "{record}").is_err() {
            break;
        }
        gate.release();
        // Drain whatever else is queued before paying for a flush.
        while let Ok(record) = responses.try_recv() {
            if writeln!(out, "{record}").is_err() {
                return;
            }
            gate.release();
        }
        if out.flush().is_err() {
            break;
        }
    }
}

enum Flow {
    Continue,
    Shutdown,
}

/// The coalescer: drains the shared queue into windows of at most
/// `max_batch` submissions, waiting at most `max_delay` after the first,
/// and answers each window through one routed predictor batch. Control
/// verbs are barriers: the open window is flushed before the verb runs.
fn coalesce_loop(shared: &Shared, queue: &Receiver<Submission>) {
    let mut window: Vec<Submission> = Vec::new();
    loop {
        let Ok(first) = queue.recv() else { break };
        let mut barrier = None;
        if matches!(first.payload, Payload::Control(..)) {
            barrier = Some(first);
        } else {
            window.push(first);
            let deadline = Instant::now() + shared.config.max_delay;
            while window.len() < shared.config.max_batch && barrier.is_none() {
                let left = deadline.saturating_duration_since(Instant::now());
                match queue.recv_timeout(left) {
                    Ok(s) if matches!(s.payload, Payload::Control(..)) => barrier = Some(s),
                    Ok(s) => window.push(s),
                    Err(mpsc::RecvTimeoutError::Timeout) => break,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        flush_window(shared, &mut window);
        if let Some(control) = barrier {
            if matches!(run_control(shared, control), Flow::Shutdown) {
                break;
            }
        }
    }
}

/// Answers one window: the sequence submissions go through a single
/// `predict_routed` call (grouped per mapping inside), then every
/// submission gets its record pushed to its connection's writer, in
/// queue order — which per connection is input order.
fn flush_window(shared: &Shared, window: &mut Vec<Submission>) {
    if window.is_empty() {
        return;
    }
    shared.stats.coalesced_windows.fetch_add(1, Ordering::Relaxed);
    {
        let mut sources: Vec<*const Gate> =
            window.iter().map(|s| Arc::as_ptr(&s.gate)).collect();
        sources.sort_unstable();
        sources.dedup();
        if sources.len() > 1 {
            shared.stats.cross_connection_windows.fetch_add(1, Ordering::Relaxed);
        }
    }
    let queries: Vec<(MappingId, Experiment)> = window
        .iter()
        .filter_map(|s| match &s.payload {
            Payload::Seq(id, seq) => Some((*id, seq.clone())),
            _ => None,
        })
        .collect();
    let cycles = shared.predictor.try_predict_routed(&queries);
    let mut answered = cycles.into_iter();
    // Labels resolve through the *current* snapshot; ids are append-only
    // across reloads, so an id routed pre-reload still labels correctly.
    let store = shared.predictor.snapshot();
    for submission in window.drain(..) {
        let record = match submission.payload {
            Payload::Seq(id, _) => match answered.next() {
                Some(Ok(cycles)) => ServeRecord::Cycles {
                    line: submission.line,
                    mapping: store.get(id).label(),
                    cycles,
                },
                // An evicted payload whose lazy reload failed (artifact
                // deleted or corrupted underneath a budgeted store): the
                // error — which names the artifact path — is this line's
                // record, and every other line in the window still
                // answers.
                Some(Err(e)) => ServeRecord::Error {
                    line: submission.line,
                    message: format!("prediction unavailable: {e}"),
                },
                // try_predict_routed answers every query; a short return
                // would be a predictor bug, but a daemon reports it
                // instead of dying.
                None => ServeRecord::Error {
                    line: submission.line,
                    message: "prediction unavailable".to_string(),
                },
            },
            Payload::Failed(message) => {
                ServeRecord::Error { line: submission.line, message }
            }
            Payload::Control(..) => unreachable!("control submissions never enter a window"),
        };
        deliver(&submission.reply, &submission.gate, record.to_json_line());
    }
}

/// Pushes one record to a connection's writer without ever blocking the
/// coalescer. The gate caps in-flight lines at the channel capacity, so
/// a full channel means the connection is broken (writer dead with
/// queued items) — the record is dropped and the gate slot released so
/// the reader can unwind.
fn deliver(reply: &SyncSender<String>, gate: &Gate, record: String) {
    match reply.try_send(record) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => gate.release(),
    }
}

/// Executes a control verb (after the window barrier) and acks the
/// submitting reader.
fn run_control(shared: &Shared, submission: Submission) -> Flow {
    let Payload::Control(verb, ack) = &submission.payload else {
        unreachable!("run_control only sees control submissions");
    };
    let (record, flow) = match verb {
        ControlVerb::Stats => (stats_record(shared, submission.line), Flow::Continue),
        ControlVerb::Mappings => (mappings_record(shared, submission.line), Flow::Continue),
        ControlVerb::Reload { name, path } => (reload(shared, submission.line, name, path), Flow::Continue),
        ControlVerb::Shutdown => {
            shared.shutdown.store(true, Ordering::Relaxed);
            (
                json::write_compact(&Value::Obj(vec![
                    ("line".into(), Value::UInt(submission.line)),
                    ("ok".into(), Value::Str("shutting down".into())),
                ])),
                Flow::Shutdown,
            )
        }
    };
    deliver(&submission.reply, &submission.gate, record);
    let _ = ack.send(());
    flow
}

/// Loads a new mapping version and swaps it into the live store. The
/// response carries the new `name@version` label; routing of lines read
/// after this point resolves to it, while batches already in flight
/// drain against the snapshot they started with.
///
/// The registration is atomic: a failing reload — unreadable file,
/// corrupt artifact, shape or name-table mismatch — leaves the serving
/// snapshot exactly as it was (no partial entry, no burned version) and
/// answers with an error record naming the artifact path, so a later
/// retry against a fixed file lands as the *next* version.
fn reload(shared: &Shared, line: u64, name: &str, path: &str) -> String {
    let reloaded = load_spec_artifact(name, path).and_then(|(canonical, loaded)| {
        shared.predictor.insert_loaded(canonical, loaded).map_err(|e| e.to_string())
    });
    match reloaded {
        Ok(id) => {
            let label = shared.predictor.snapshot().get(id).label();
            json::write_compact(&Value::Obj(vec![
                ("line".into(), Value::UInt(line)),
                ("reloaded".into(), Value::Str(label)),
            ]))
        }
        Err(message) => {
            ServeRecord::Error { line, message: format!("reload failed: {message}") }.to_json_line()
        }
    }
}

/// Per-mapping breakdown shared by `!stats` and `!mappings`: the
/// `name@version` label, its query count, and its payload residency
/// (whether the decomposition is in memory right now, and how many
/// bytes it is accounted at) — in store order (load order).
fn mapping_entries(shared: &Shared) -> Vec<Value> {
    let store = shared.predictor.snapshot();
    store
        .ids()
        .zip(shared.predictor.per_mapping_queries())
        .map(|(id, (label, queries))| {
            let entry = store.get(id);
            Value::Obj(vec![
                ("mapping".into(), Value::Str(label)),
                ("queries".into(), Value::UInt(queries)),
                ("resident".into(), Value::Bool(entry.is_resident())),
                ("bytes".into(), Value::UInt(entry.payload_bytes())),
            ])
        })
        .collect()
}

/// The store-level residency counters for `!stats`: the byte budget (or
/// `null` when unbudgeted), bytes currently resident (payloads and
/// interned name tables separately), and the cumulative eviction/reload
/// counts that show the budget machinery working.
fn store_record(shared: &Shared) -> Value {
    let store = shared.predictor.snapshot();
    let r = store.residency_stats();
    Value::Obj(vec![
        ("budget".into(), r.budget.map_or(Value::Null, Value::UInt)),
        ("resident_bytes".into(), Value::UInt(r.resident_bytes)),
        ("name_bytes".into(), Value::UInt(r.name_bytes)),
        ("evictions".into(), Value::UInt(r.evictions)),
        ("reloads".into(), Value::UInt(r.reloads)),
        ("entries".into(), Value::UInt(store.len() as u64)),
        ("resident".into(), Value::UInt(store.resident_count() as u64)),
    ])
}

/// The `!mappings` response: every loaded mapping as a `name@version`
/// label with its per-mapping query count and payload residency, in
/// store order (load order). A slimmer view than `!stats` for clients
/// that only need to know what the daemon can route to — e.g. the serve
/// smoke script checking verb wiring.
fn mappings_record(shared: &Shared, line: u64) -> String {
    json::write_compact(&Value::Obj(vec![
        ("line".into(), Value::UInt(line)),
        ("mappings".into(), Value::Arr(mapping_entries(shared))),
    ]))
}

/// The `!stats` response: predictor counters, daemon counters, QPS, the
/// hit/miss split since the previous `!stats` (the *window*), and the
/// per-mapping load breakdown.
fn stats_record(shared: &Shared, line: u64) -> String {
    let p = shared.predictor.stats();
    let now = Instant::now();
    // Delta against the previous `!stats`, then advance the baseline.
    // Saturating: concurrent `!stats` calls may interleave their counter
    // reads with the baseline swap, and a window must never underflow.
    let (w, window_wall) = {
        let mut baseline = shared.window.lock().expect("window baseline poisoned");
        let prev = baseline.stats;
        let wall = now.saturating_duration_since(baseline.at);
        baseline.stats = p;
        baseline.at = now;
        (
            PredictStats {
                queries: p.queries.saturating_sub(prev.queries),
                cache_hits: p.cache_hits.saturating_sub(prev.cache_hits),
                batches: p.batches.saturating_sub(prev.batches),
                miss_solve_ns: p.miss_solve_ns.saturating_sub(prev.miss_solve_ns),
            },
            wall,
        )
    };
    // Fraction of the window's wall-clock the predictor spent solving
    // misses — ~0 means traffic is riding the cache, ~1 means the miss
    // path is saturating a core.
    let miss_solve_share = if window_wall.as_nanos() > 0 {
        w.miss_solve_ns as f64 / window_wall.as_nanos() as f64
    } else {
        0.0
    };
    let uptime = shared.started.elapsed();
    let qps = if uptime.as_secs_f64() > 0.0 {
        p.queries as f64 / uptime.as_secs_f64()
    } else {
        0.0
    };
    json::write_compact(&Value::Obj(vec![
        ("line".into(), Value::UInt(line)),
        (
            "stats".into(),
            Value::Obj(vec![
                ("queries".into(), Value::UInt(p.queries)),
                ("cache_hits".into(), Value::UInt(p.cache_hits)),
                ("hit_rate".into(), Value::Num(p.hit_rate())),
                ("predictor_batches".into(), Value::UInt(p.batches)),
                (
                    "coalesced_windows".into(),
                    Value::UInt(shared.stats.coalesced_windows.load(Ordering::Relaxed)),
                ),
                (
                    "cross_connection_windows".into(),
                    Value::UInt(shared.stats.cross_connection_windows.load(Ordering::Relaxed)),
                ),
                (
                    "connections".into(),
                    Value::UInt(shared.stats.live_connections.load(Ordering::Relaxed)),
                ),
                (
                    "total_connections".into(),
                    Value::UInt(shared.stats.total_connections.load(Ordering::Relaxed)),
                ),
                ("uptime_ms".into(), Value::UInt(uptime.as_millis() as u64)),
                ("qps".into(), Value::Num(qps)),
                ("misses".into(), Value::UInt(p.misses())),
                ("miss_solve_ms".into(), Value::Num(p.miss_solve_ns as f64 / 1e6)),
                (
                    "window".into(),
                    Value::Obj(vec![
                        ("queries".into(), Value::UInt(w.queries)),
                        ("cache_hits".into(), Value::UInt(w.cache_hits)),
                        ("misses".into(), Value::UInt(w.misses())),
                        ("hit_rate".into(), Value::Num(w.hit_rate())),
                        ("miss_solve_ms".into(), Value::Num(w.miss_solve_ns as f64 / 1e6)),
                        ("miss_solve_share".into(), Value::Num(miss_solve_share)),
                    ]),
                ),
                ("mappings".into(), Value::Arr(mapping_entries(shared))),
                ("store".into(), store_record(shared)),
            ]),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_machine::platforms;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn tiny_store() -> MappingStore {
        let mut store = MappingStore::new();
        let tiny = platforms::tiny();
        let names: Vec<String> = tiny.isa().forms().iter().map(|f| f.name.clone()).collect();
        store.insert("TINY", names, tiny.ground_truth().clone());
        store
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            cache_capacity: 1024,
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            max_inflight: 64,
        }
    }

    fn start_tcp(store: MappingStore) -> (Server, std::net::SocketAddr) {
        let server = Server::new(store, quick_config()).expect("non-empty store");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind test listener");
        let addr = listener.local_addr().unwrap();
        server.listen_tcp(listener);
        (server, addr)
    }

    /// Sends `lines` on one connection, closes the write half, and
    /// returns every response line.
    fn roundtrip(addr: std::net::SocketAddr, lines: &str) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(lines.as_bytes()).expect("send");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        BufReader::new(stream).lines().map(|l| l.expect("read response")).collect()
    }

    #[test]
    fn an_empty_store_is_refused_not_served() {
        let err = Server::new(MappingStore::new(), quick_config()).err().expect("must refuse");
        assert_eq!(err, "at least one --mapping NAME=file.json is required");
    }

    const ADD: &str = "add_r64_r64_r64";
    const MUL: &str = "mul_r64_r64_r64";

    #[test]
    fn one_connection_gets_offline_identical_records() {
        let (server, addr) = start_tcp(tiny_store());
        let responses = roundtrip(
            addr,
            &format!("{ADD}\n{ADD}; {MUL}\n\nnot_an_inst\nTINY: {ADD}; {MUL} x2\n"),
        );
        // Offline reference: the same lines through the predictor.
        let store = server.predictor().snapshot();
        let id = store.latest("TINY").unwrap();
        let a = server.predictor().predict(id, &store.get(id).parse(ADD).unwrap());
        let b =
            server.predictor().predict(id, &store.get(id).parse(&format!("{ADD}; {MUL}")).unwrap());
        let c = server
            .predictor()
            .predict(id, &store.get(id).parse(&format!(" {ADD}; {MUL} x2")).unwrap());
        assert_eq!(responses.len(), 4, "blank line yields no record: {responses:?}");
        assert_eq!(
            responses[0],
            ServeRecord::Cycles { line: 1, mapping: "TINY@1".into(), cycles: a }.to_json_line()
        );
        assert_eq!(
            responses[1],
            ServeRecord::Cycles { line: 2, mapping: "TINY@1".into(), cycles: b }.to_json_line()
        );
        assert!(
            responses[2].starts_with("{\"line\":4,\"error\":"),
            "unknown instruction becomes an error record: {}",
            responses[2]
        );
        assert_eq!(
            responses[3],
            ServeRecord::Cycles { line: 5, mapping: "TINY@1".into(), cycles: c }.to_json_line()
        );
        server.stop();
        server.join();
    }

    #[test]
    fn concurrent_clients_each_see_their_own_ordered_stream() {
        let (server, addr) = start_tcp(tiny_store());
        let clients: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let input: String = (0..32)
                        .map(|j| format!("{ADD}:{}\n{MUL}; {ADD}\n", (i + j) % 5 + 1))
                        .collect();
                    (i, roundtrip(addr, &input))
                })
            })
            .collect();
        let mut per_client = Vec::new();
        for handle in clients {
            per_client.push(handle.join().expect("client thread"));
        }
        for (i, responses) in &per_client {
            assert_eq!(responses.len(), 64, "client {i} got every line answered");
            for (n, line) in responses.iter().enumerate() {
                assert!(
                    line.starts_with(&format!("{{\"line\":{},\"mapping\":\"TINY@1\"", n + 1)),
                    "client {i} line {} in order: {line}",
                    n + 1
                );
            }
        }
        // Same-content lines from different clients must agree bit-for-bit.
        let first: Vec<&str> =
            per_client.iter().map(|(_, r)| r[1].split_once(',').unwrap().1).collect();
        assert!(first.windows(2).all(|w| w[0] == w[1]), "mul add identical everywhere: {first:?}");
        server.stop();
        server.join();
    }

    #[test]
    fn reload_swaps_routing_mid_stream_and_drains_cleanly() {
        let dir = std::env::temp_dir().join("pmevo_serve_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("tiny_v2.json");
        std::fs::write(&artifact, platforms::tiny().ground_truth().to_json_pretty()).unwrap();

        let (server, addr) = start_tcp(tiny_store());
        let responses = roundtrip(
            addr,
            &format!(
                "{ADD}\n!reload TINY={}\n{ADD}\n!reload TINY=/nope.json\n!stats\n",
                artifact.display()
            ),
        );
        assert_eq!(responses.len(), 5, "{responses:?}");
        assert!(responses[0].contains("\"mapping\":\"TINY@1\""), "{}", responses[0]);
        assert_eq!(
            responses[1],
            "{\"line\":2,\"reloaded\":\"TINY@2\"}",
            "reload answers with the new version"
        );
        assert!(
            responses[2].contains("\"mapping\":\"TINY@2\""),
            "lines after the reload route to the new version: {}",
            responses[2]
        );
        assert!(
            responses[3].starts_with("{\"line\":4,\"error\":\"reload failed:"),
            "a bad reload is an error record, not a crash: {}",
            responses[3]
        );
        assert!(
            responses[4].contains("{\"mapping\":\"TINY@1\",\"queries\":1,\"resident\":true,\"bytes\":")
                && responses[4].contains("{\"mapping\":\"TINY@2\",\"queries\":1,\"resident\":true,\"bytes\":"),
            "stats break down the per-mapping load and residency: {}",
            responses[4]
        );
        assert!(
            responses[4].contains("\"store\":{\"budget\":null,\"resident_bytes\":"),
            "stats report the store's residency counters: {}",
            responses[4]
        );
        server.stop();
        server.join();
    }

    #[test]
    fn failed_reloads_are_atomic_and_name_the_path() {
        let dir = std::env::temp_dir().join("pmevo_serve_reload_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let garbage = dir.join("garbage.bin");
        // Sniffs as a binary artifact, then fails to decode.
        std::fs::write(&garbage, b"PMEVOBINgarbage").unwrap();

        let (server, addr) = start_tcp(tiny_store());
        let responses = roundtrip(
            addr,
            &format!(
                "!reload TINY={}\n!reload TINY=/definitely/not/here.bin\n!mappings\n",
                garbage.display()
            ),
        );
        assert_eq!(responses.len(), 3, "{responses:?}");
        assert!(
            responses[0].contains("\"error\":\"reload failed:")
                && responses[0].contains("garbage.bin"),
            "a corrupt artifact fails with its path named: {}",
            responses[0]
        );
        assert!(
            responses[1].contains("/definitely/not/here.bin"),
            "an unreadable artifact fails with its path named: {}",
            responses[1]
        );
        assert!(
            responses[2].contains("\"mapping\":\"TINY@1\"")
                && !responses[2].contains("TINY@2"),
            "failed reloads leave the store untouched: {}",
            responses[2]
        );

        // Fix the artifact and retry: the reload lands as version 2 —
        // the failures burned no version numbers and left no partial
        // entry behind.
        let fixed = dir.join("tiny_fixed.json");
        std::fs::write(&fixed, platforms::tiny().ground_truth().to_json_pretty()).unwrap();
        let responses =
            roundtrip(addr, &format!("!reload TINY={}\n!mappings\n", fixed.display()));
        assert_eq!(responses[0], "{\"line\":1,\"reloaded\":\"TINY@2\"}", "{responses:?}");
        assert!(
            responses[1].contains("\"mapping\":\"TINY@1\"")
                && responses[1].contains("\"mapping\":\"TINY@2\""),
            "both versions are listed after the healed reload: {}",
            responses[1]
        );
        server.stop();
        server.join();
    }

    #[test]
    fn shutdown_verb_stops_the_daemon_for_everyone() {
        let (server, addr) = start_tcp(tiny_store());
        let responses = roundtrip(addr, &format!("{ADD}\n!shutdown\n"));
        assert_eq!(responses.len(), 2, "{responses:?}");
        assert_eq!(responses[1], "{\"line\":2,\"ok\":\"shutting down\"}");
        assert!(server.is_shutdown());
        server.join();
        // New connections are refused once the accept loop has exited.
        assert!(
            TcpStream::connect(addr).map(|_| ()).is_err()
                || roundtrip(addr, &format!("{ADD}\n")).is_empty(),
            "no service after shutdown"
        );
    }

    #[test]
    fn malformed_control_lines_answer_with_error_records() {
        let (server, addr) = start_tcp(tiny_store());
        let responses = roundtrip(addr, &format!("!frobnicate\n!reload notaspec\n{ADD}\n"));
        assert_eq!(responses.len(), 3, "{responses:?}");
        assert!(responses[0].starts_with("{\"line\":1,\"error\":"), "{}", responses[0]);
        assert!(responses[1].starts_with("{\"line\":2,\"error\":"), "{}", responses[1]);
        assert!(responses[2].contains("\"cycles\":"), "{}", responses[2]);
        server.stop();
        server.join();
    }
}
