//! Mapping-artifact loading and line routing shared by every serving
//! front end (`pmevo-serve`, `pmevo-cli predict`), so the daemon and the
//! offline pipe resolve `--mapping` specs and `PLATFORM:` prefixes
//! identically.

use pmevo_core::ThreeLevelMapping;
use pmevo_machine::{platforms, Platform};
use pmevo_predict::{MappingId, MappingStore};

/// Loads a `NAME=file.json` mapping artifact: `NAME` must be a built-in
/// platform (it provides the instruction-name table), and the artifact's
/// shape must match that platform's ISA and port count.
///
/// # Errors
///
/// A printable message for unknown platforms, unreadable files,
/// unparseable artifacts and shape mismatches.
pub fn load_platform_mapping(name: &str, path: &str) -> Result<(Platform, ThreeLevelMapping), String> {
    let platform = platforms::by_name(name).ok_or_else(|| {
        format!("unknown platform {name:?}; expected SKL, ZEN, A72 or TINY")
    })?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mapping =
        ThreeLevelMapping::from_json(&data).map_err(|e| format!("cannot parse {path}: {e}"))?;
    if mapping.num_insts() != platform.isa().len() || mapping.num_ports() != platform.num_ports() {
        return Err(format!(
            "mapping shape ({} insts, {} ports) does not match platform {} ({} insts, {} ports)",
            mapping.num_insts(),
            mapping.num_ports(),
            platform.name(),
            platform.isa().len(),
            platform.num_ports()
        ));
    }
    Ok((platform, mapping))
}

/// Builds a [`MappingStore`] from `NAME=file.json` specs (the repeated
/// `--mapping` flags of `pmevo-serve` and `pmevo-cli predict`).
///
/// # Errors
///
/// `at least one --mapping NAME=file.json is required` for an empty spec
/// list — a serving process with an empty store has nothing to answer
/// from — plus every failure of [`load_platform_mapping`].
pub fn store_from_specs(specs: &[String]) -> Result<MappingStore, String> {
    if specs.is_empty() {
        return Err("at least one --mapping NAME=file.json is required".to_string());
    }
    let mut store = MappingStore::new();
    for spec in specs {
        let Some((name, path)) = spec.split_once('=') else {
            return Err(format!(
                "--mapping {spec:?} is not of the form NAME=file.json (or pass --platform P --mapping file.json)"
            ));
        };
        let (platform, mapping) = load_platform_mapping(name, path)?;
        let inst_names = platform.isa().forms().iter().map(|f| f.name.clone()).collect();
        store.insert(platform.name(), inst_names, mapping);
    }
    Ok(store)
}

/// Routes one input line to a stored mapping: a leading `PLATFORM:`
/// prefix is consumed when (and only when) it names a stored mapping,
/// case-insensitively; everything else goes to the latest version of
/// `default_name`. Returns the routed id and the sequence text, or
/// `None` when `default_name` itself is not in the store (an empty or
/// misconfigured store — callers report it instead of panicking).
///
/// The `:` also spells repeat counts in the sequence grammar
/// (`add:2`), which is why an unrecognized prefix falls back to the
/// whole line rather than erroring.
pub fn route_line<'a>(
    store: &MappingStore,
    default_name: &str,
    line: &'a str,
) -> Option<(MappingId, &'a str)> {
    let lookup = |name: &str| {
        let name = name.trim();
        store.latest(name).or_else(|| store.latest(&name.to_uppercase()))
    };
    let default = lookup(default_name)?;
    Some(match line.split_once(':') {
        Some((name, rest)) => match lookup(name) {
            Some(id) => (id, rest),
            None => (default, line),
        },
        None => (default, line),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_require_at_least_one_mapping() {
        let err = store_from_specs(&[]).unwrap_err();
        assert_eq!(err, "at least one --mapping NAME=file.json is required");
    }

    #[test]
    fn specs_reject_malformed_and_unknown_entries() {
        assert!(store_from_specs(&["bare.json".into()]).unwrap_err().contains("NAME=file.json"));
        assert!(
            store_from_specs(&["M1=x.json".into()]).unwrap_err().contains("unknown platform")
        );
        assert!(store_from_specs(&["TINY=/definitely/not/here.json".into()])
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn specs_load_and_shape_check_real_artifacts() {
        let dir = std::env::temp_dir().join("pmevo_serve_specs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("tiny.json");
        std::fs::write(&good, platforms::tiny().ground_truth().to_json_pretty()).unwrap();
        let store =
            store_from_specs(&[format!("TINY={}", good.display())]).expect("valid artifact");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(store.latest("TINY").unwrap()).label(), "TINY@1");

        // The same artifact under the wrong platform is a shape error.
        let err = store_from_specs(&[format!("SKL={}", good.display())]).unwrap_err();
        assert!(err.contains("does not match platform"), "{err}");
    }

    #[test]
    fn routing_consumes_known_prefixes_only() {
        let mut store = MappingStore::new();
        let tiny = platforms::tiny();
        let names: Vec<String> = tiny.isa().forms().iter().map(|f| f.name.clone()).collect();
        let t1 = store.insert("TINY", names.clone(), tiny.ground_truth().clone());
        let t2 = store.insert("TINY", names, tiny.ground_truth().clone());
        let skl = platforms::skl();
        let s1 = store.insert(
            "SKL",
            skl.isa().forms().iter().map(|f| f.name.clone()).collect(),
            skl.ground_truth().clone(),
        );

        // Prefix routing, case-insensitively; latest version wins.
        assert_eq!(route_line(&store, "TINY", "SKL: add_r64_r64"), Some((s1, " add_r64_r64")));
        assert_eq!(route_line(&store, "TINY", "skl: add_r64_r64"), Some((s1, " add_r64_r64")));
        assert_eq!(route_line(&store, "TINY", "TINY: x"), Some((t2, " x")));
        assert_ne!(t1, t2);
        // A `:` that spells a repeat count is not a route.
        assert_eq!(route_line(&store, "TINY", "add:2"), Some((t2, "add:2")));
        // Unrouteable default name: no panic, a None.
        assert_eq!(route_line(&store, "M1", "add"), None);
    }
}
