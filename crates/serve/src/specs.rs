//! Mapping-artifact loading and line routing shared by every serving
//! front end (`pmevo-serve`, `pmevo-cli predict`), so the daemon and the
//! offline pipe resolve `--mapping` specs and `PLATFORM:` prefixes
//! identically.

use pmevo_machine::platforms;
use pmevo_predict::{
    load_artifact_file, validate_mapping_name, LoadedArtifact, MappingId, MappingStore, StoreError,
};

/// Loads and validates one `NAME=file` mapping artifact, returning the
/// canonical registration name and the loaded artifact (which remembers
/// its path, so budgeted stores can evict and lazily reload it).
///
/// Two kinds of name are accepted:
///
/// * a **built-in platform** (`SKL`, `ZEN`, `A72`, `TINY`) — the
///   platform supplies the instruction-name table JSON artifacts lack,
///   and the artifact's shape (instruction count *and* port count) is
///   checked against it; binary artifacts additionally have their
///   embedded table verified against the platform's;
/// * **any other registrable name** — allowed only for binary artifacts,
///   which embed their own name table; a JSON artifact under an unknown
///   name has no instruction names to resolve sequences with, so it is
///   refused with a message saying exactly that.
///
/// # Errors
///
/// A printable message for unregistrable names (`@`, `=`, whitespace —
/// reserved by the `name@version` / `NAME=file` grammars), unreadable
/// files, corrupt artifacts, shape mismatches and name-table mismatches.
pub fn load_spec_artifact(name: &str, path: &str) -> Result<(String, LoadedArtifact), String> {
    validate_mapping_name(name).map_err(|e| e.to_string())?;
    match platforms::by_name(name) {
        Some(platform) => {
            let names: Vec<String> =
                platform.isa().forms().iter().map(|f| f.name.clone()).collect();
            let loaded = load_artifact_file(path, Some(&names)).map_err(|e| e.to_string())?;
            if loaded.mapping.num_ports() != platform.num_ports() {
                return Err(format!(
                    "mapping shape ({} insts, {} ports) does not match platform {} ({} insts, {} ports)",
                    loaded.mapping.num_insts(),
                    loaded.mapping.num_ports(),
                    platform.name(),
                    platform.isa().len(),
                    platform.num_ports()
                ));
            }
            Ok((platform.name().to_owned(), loaded))
        }
        None => match load_artifact_file(path, None) {
            Ok(loaded) => Ok((name.to_owned(), loaded)),
            Err(StoreError::MissingNames { path }) => Err(format!(
                "{name:?} is not a built-in platform, so {path} must be a binary \
                 artifact (JSON artifacts carry no instruction names; \
                 see `pmevo-cli convert`)"
            )),
            Err(e) => Err(e.to_string()),
        },
    }
}

/// Builds a [`MappingStore`] from `NAME=file` specs (the repeated
/// `--mapping` flags of `pmevo-serve` and `pmevo-cli predict`), holding
/// payloads under `budget` bytes when one is given (`--store-budget`).
/// Every entry is registered through [`load_spec_artifact`], so it is
/// evictable and lazily reloadable from its artifact path.
///
/// # Errors
///
/// `at least one --mapping NAME=file.json is required` for an empty spec
/// list — a serving process with an empty store has nothing to answer
/// from — plus every failure of [`load_spec_artifact`].
pub fn store_from_specs(specs: &[String], budget: Option<u64>) -> Result<MappingStore, String> {
    if specs.is_empty() {
        return Err("at least one --mapping NAME=file.json is required".to_string());
    }
    let mut store = MappingStore::with_budget(budget);
    for spec in specs {
        let Some((name, path)) = spec.split_once('=') else {
            return Err(format!(
                "--mapping {spec:?} is not of the form NAME=file.json (or pass --platform P --mapping file.json)"
            ));
        };
        let (canonical, loaded) = load_spec_artifact(name, path)?;
        store.insert_loaded(canonical, loaded).map_err(|e| e.to_string())?;
    }
    Ok(store)
}

/// Routes one input line to a stored mapping: a leading `PLATFORM:`
/// prefix is consumed when (and only when) it names a stored mapping,
/// case-insensitively; everything else goes to the latest version of
/// `default_name`. Returns the routed id and the sequence text, or
/// `None` when `default_name` itself is not in the store (an empty or
/// misconfigured store — callers report it instead of panicking).
///
/// The `:` also spells repeat counts in the sequence grammar
/// (`add:2`), which is why an unrecognized prefix falls back to the
/// whole line rather than erroring.
pub fn route_line<'a>(
    store: &MappingStore,
    default_name: &str,
    line: &'a str,
) -> Option<(MappingId, &'a str)> {
    let lookup = |name: &str| {
        let name = name.trim();
        store.latest(name).or_else(|| store.latest(&name.to_uppercase()))
    };
    let default = lookup(default_name)?;
    Some(match line.split_once(':') {
        Some((name, rest)) => match lookup(name) {
            Some(id) => (id, rest),
            None => (default, line),
        },
        None => (default, line),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::MappingArtifact;

    fn scratch(file: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pmevo_serve_specs_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(file)
    }

    #[test]
    fn specs_require_at_least_one_mapping() {
        let err = store_from_specs(&[], None).unwrap_err();
        assert_eq!(err, "at least one --mapping NAME=file.json is required");
    }

    #[test]
    fn specs_reject_malformed_and_unknown_entries() {
        let bare = store_from_specs(&["bare.json".into()], None).unwrap_err();
        assert!(bare.contains("NAME=file.json"), "{bare}");
        // An unknown name is only an error for JSON artifacts (no name
        // table); the message explains the binary alternative.
        let unknown = store_from_specs(&["M1=/definitely/not/here.json".into()], None).unwrap_err();
        assert!(unknown.contains("cannot read"), "{unknown}");
        let missing =
            store_from_specs(&["TINY=/definitely/not/here.json".into()], None).unwrap_err();
        assert!(missing.contains("cannot read"), "{missing}");
    }

    #[test]
    fn specs_reject_reserved_characters_in_names() {
        // `@` is the version separator of `name@version` labels and `=`
        // splits the spec itself, so neither can be a mapping name.
        let err = store_from_specs(&["TINY@2=x.json".into()], None).unwrap_err();
        assert!(err.contains("invalid mapping name"), "{err}");
        assert!(err.contains('@'), "{err}");
    }

    #[test]
    fn specs_load_and_shape_check_real_artifacts() {
        let good = scratch("tiny.json");
        std::fs::write(&good, platforms::tiny().ground_truth().to_json_pretty()).unwrap();
        let store =
            store_from_specs(&[format!("TINY={}", good.display())], None).expect("valid artifact");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(store.latest("TINY").unwrap()).label(), "TINY@1");

        // The same artifact under the wrong platform is a shape error.
        let err = store_from_specs(&[format!("SKL={}", good.display())], None).unwrap_err();
        assert!(
            err.contains("does not match") || err.contains("does not fit"),
            "{err}"
        );
    }

    #[test]
    fn binary_specs_work_for_platforms_and_free_names() {
        let tiny = platforms::tiny();
        let names: Vec<String> = tiny.isa().forms().iter().map(|f| f.name.clone()).collect();
        let artifact = MappingArtifact::new(names, tiny.ground_truth().clone());
        let path = scratch("tiny_spec.bin");
        std::fs::write(&path, artifact.to_bytes()).unwrap();

        // Under the platform name the embedded table is verified.
        let store = store_from_specs(&[format!("TINY={}", path.display())], None).unwrap();
        assert_eq!(store.get(store.latest("TINY").unwrap()).label(), "TINY@1");
        // Under a free name the embedded table simply IS the table.
        let store = store_from_specs(&[format!("FLEET7={}", path.display())], None).unwrap();
        let id = store.latest("FLEET7").unwrap();
        assert!(store.get(id).resolve("add_r64_r64_r64").is_some());

        // A JSON artifact under a free name has no name table: refused
        // with a pointer at the binary format.
        let json = scratch("tiny_spec.json");
        std::fs::write(&json, tiny.ground_truth().to_json_pretty()).unwrap();
        let err = store_from_specs(&[format!("FLEET7={}", json.display())], None).unwrap_err();
        assert!(err.contains("not a built-in platform"), "{err}");
        assert!(err.contains("tiny_spec.json"), "error names the path: {err}");
    }

    #[test]
    fn budgeted_specs_register_evictable_entries() {
        let tiny = platforms::tiny();
        let names: Vec<String> = tiny.isa().forms().iter().map(|f| f.name.clone()).collect();
        let artifact = MappingArtifact::new(names, tiny.ground_truth().clone());
        let path = scratch("tiny_budget.bin");
        std::fs::write(&path, artifact.to_bytes()).unwrap();

        let specs = vec![
            format!("A1={}", path.display()),
            format!("B2={}", path.display()),
            format!("C3={}", path.display()),
        ];
        let store = store_from_specs(&specs, Some(1)).expect("budget never refuses registration");
        assert_eq!(store.budget(), Some(1));
        // A 1-byte budget keeps at most the most recent payload resident;
        // all three still answer (lazily reloading from their paths).
        assert!(store.resident_count() <= 1);
        for id in store.ids() {
            assert!(store.get(id).mapping().is_ok(), "evicted entries reload on demand");
        }
        assert!(store.residency_stats().evictions > 0);
    }

    #[test]
    fn routing_consumes_known_prefixes_only() {
        let mut store = MappingStore::new();
        let tiny = platforms::tiny();
        let names: Vec<String> = tiny.isa().forms().iter().map(|f| f.name.clone()).collect();
        let t1 = store.insert("TINY", names.clone(), tiny.ground_truth().clone());
        let t2 = store.insert("TINY", names, tiny.ground_truth().clone());
        let skl = platforms::skl();
        let s1 = store.insert(
            "SKL",
            skl.isa().forms().iter().map(|f| f.name.clone()).collect(),
            skl.ground_truth().clone(),
        );

        // Prefix routing, case-insensitively; latest version wins.
        assert_eq!(route_line(&store, "TINY", "SKL: add_r64_r64"), Some((s1, " add_r64_r64")));
        assert_eq!(route_line(&store, "TINY", "skl: add_r64_r64"), Some((s1, " add_r64_r64")));
        assert_eq!(route_line(&store, "TINY", "TINY: x"), Some((t2, " x")));
        assert_ne!(t1, t2);
        // A `:` that spells a repeat count is not a route.
        assert_eq!(route_line(&store, "TINY", "add:2"), Some((t2, "add:2")));
        // Unrouteable default name: no panic, a None.
        assert_eq!(route_line(&store, "M1", "add"), None);
    }
}
