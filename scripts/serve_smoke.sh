#!/usr/bin/env bash
# End-to-end smoke of the pmevo-serve daemon over a Unix socket:
# two mapping versions inferred from scratch, two concurrent clients,
# !stats, a hot !reload re-routing subsequent lines to the new version,
# and a clean !shutdown. Prediction outputs land in $OUTDIR so a second
# run can be cmp'd against the first (predictions are deterministic;
# stats are not and are kept in separate files).
#
# usage: scripts/serve_smoke.sh [OUTDIR]
set -euo pipefail

OUTDIR="${1:-/tmp/pmevo_serve_smoke}"
CLI="${PMEVO_CLI:-target/release/pmevo-cli}"
SERVE="${PMEVO_SERVE:-target/release/pmevo-serve}"
SOCK="$OUTDIR/daemon.sock"

mkdir -p "$OUTDIR"
rm -f "$SOCK"

# Two artifact versions: same platform, different inference seeds.
"$CLI" infer --platform TINY --population 40 --generations 8 --seed 1 \
  --out "$OUTDIR/tiny_v1.json" >/dev/null
"$CLI" infer --platform TINY --population 40 --generations 8 --seed 2 \
  --out "$OUTDIR/tiny_v2.json" >/dev/null

"$SERVE" --mapping "TINY=$OUTDIR/tiny_v1.json" --unix "$SOCK" \
  --max-delay-ms 1 2>"$OUTDIR/daemon.log" &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null || true' EXIT

for _ in $(seq 50); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon socket never appeared"; cat "$OUTDIR/daemon.log"; exit 1; }

# Two concurrent clients hammering the daemon with interleaved traffic.
CLIENT_INPUT_A="$OUTDIR/input_a.txt"
CLIENT_INPUT_B="$OUTDIR/input_b.txt"
: >"$CLIENT_INPUT_A"; : >"$CLIENT_INPUT_B"
for i in $(seq 40); do
  echo "add_r64_r64_r64 x$((i % 5 + 1))" >>"$CLIENT_INPUT_A"
  echo "TINY: mul_r64_r64_r64; add_r64_r64_r64:$((i % 3 + 1))" >>"$CLIENT_INPUT_B"
done
echo "not_an_instruction" >>"$CLIENT_INPUT_A"

"$CLI" client --unix "$SOCK" <"$CLIENT_INPUT_A" >"$OUTDIR/client_a.out" &
A_PID=$!
"$CLI" client --unix "$SOCK" <"$CLIENT_INPUT_B" >"$OUTDIR/client_b.out" &
B_PID=$!
wait "$A_PID" "$B_PID"

# Per-client responses must be byte-identical to the offline pipe.
"$CLI" predict --mapping "TINY=$OUTDIR/tiny_v1.json" \
  <"$CLIENT_INPUT_A" >"$OUTDIR/offline_a.out" 2>/dev/null
"$CLI" predict --mapping "TINY=$OUTDIR/tiny_v1.json" \
  <"$CLIENT_INPUT_B" >"$OUTDIR/offline_b.out" 2>/dev/null
cmp "$OUTDIR/client_a.out" "$OUTDIR/offline_a.out"
cmp "$OUTDIR/client_b.out" "$OUTDIR/offline_b.out"

# Stats must see both connections and the served queries (nondeterministic
# fields — kept out of the cmp'd prediction outputs).
printf '!stats\n' | "$CLI" client --unix "$SOCK" >"$OUTDIR/stats.json"
grep -q '"total_connections":3' "$OUTDIR/stats.json"
grep -q '"mapping":"TINY@1"' "$OUTDIR/stats.json"

# !mappings lists every loaded version with its query count; if the verb
# loses its match arm in the daemon, this grep fails loudly.
printf '!mappings\n' | "$CLI" client --unix "$SOCK" >"$OUTDIR/mappings.json"
grep -q '"mappings":\[{"mapping":"TINY@1","queries":' "$OUTDIR/mappings.json"

# Hot reload: subsequent lines on the same connection route to TINY@2.
printf '!reload TINY=%s\nadd_r64_r64_r64\n' "$OUTDIR/tiny_v2.json" |
  "$CLI" client --unix "$SOCK" >"$OUTDIR/reload.out"
grep -q '"reloaded":"TINY@2"' "$OUTDIR/reload.out"
grep -q '"mapping":"TINY@2"' "$OUTDIR/reload.out"
# The reloaded mapping answers with v2's bits (a fresh offline store
# labels the same artifact TINY@1, so versions are normalized away).
tail -1 "$OUTDIR/reload.out" >"$OUTDIR/reload_prediction.out"
echo "add_r64_r64_r64" | "$CLI" predict --mapping "TINY=$OUTDIR/tiny_v2.json" 2>/dev/null \
  | sed -e 's/"line":1/"line":2/' -e 's/"TINY@1"/"TINY@2"/' >"$OUTDIR/reload_offline.out"
cmp "$OUTDIR/reload_prediction.out" "$OUTDIR/reload_offline.out"

# After the reload both versions are listed, with traffic attributed to
# the version that served it.
printf '!mappings\n' | "$CLI" client --unix "$SOCK" >"$OUTDIR/mappings_reloaded.json"
grep -q '"mapping":"TINY@1"' "$OUTDIR/mappings_reloaded.json"
grep -q '"mapping":"TINY@2"' "$OUTDIR/mappings_reloaded.json"

# Clean shutdown: the daemon acks, exits 0 and removes its socket.
printf '!shutdown\n' | "$CLI" client --unix "$SOCK" | grep -q '"ok":"shutting down"'
wait "$DAEMON_PID"
trap - EXIT
[ ! -S "$SOCK" ] || { echo "socket file survived shutdown"; exit 1; }

echo "serve smoke OK ($OUTDIR)"
