//! Infer a port mapping for one of the paper's three (simulated)
//! machines through the [`Session`] API and report the Table-2-style
//! statistics.
//!
//! Run with:
//! `cargo run --release --example infer_mapping -- [SKL|ZEN|A72] [population]`
//!
//! Defaults: A72 (the platform the paper highlights as out of reach for
//! counter-based tools), population 300.

use pmevo::machine::platforms;
use pmevo::Session;

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "A72".into());
    let population: usize = args
        .next()
        .map(|s| s.parse().expect("population must be a number"))
        .unwrap_or(300);

    let platform = match which.to_uppercase().as_str() {
        "SKL" => platforms::skl(),
        "ZEN" => platforms::zen(),
        "A72" => platforms::a72(),
        other => {
            eprintln!("unknown platform {other}; expected SKL, ZEN or A72");
            std::process::exit(1);
        }
    };

    println!(
        "PMEvo inference on {} ({} forms, {} ports, population {population})",
        platform.name(),
        platform.isa().len(),
        platform.num_ports()
    );

    let report = Session::builder()
        .platform(platform.clone())
        .seed(0xA72)
        .population(population)
        .max_generations(50)
        .accuracy_benchmarks(256)
        .build()
        .expect("the session configuration is valid")
        .run();

    println!("\n{report}");

    // How well does the inferred mapping track the hidden ground truth
    // on singleton experiments? (The session's accuracy block already
    // reports held-out multiset benchmarks.)
    let gt = platform.ground_truth();
    let sample: Vec<_> = (0..platform.isa().len() as u32)
        .step_by(17)
        .map(|i| pmevo::core::Experiment::singleton(pmevo::core::InstId(i)))
        .collect();
    println!("\nspot check (inferred vs ground-truth model, singleton experiments):");
    for e in sample.iter().take(8) {
        println!(
            "  {e}: inferred {:.2}, ground truth {:.2}",
            report.mapping.throughput(e),
            gt.throughput(e)
        );
    }
}
