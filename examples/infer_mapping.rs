//! Infer a port mapping for one of the paper's three (simulated)
//! machines and report the Table-2-style statistics.
//!
//! Run with:
//! `cargo run --release --example infer_mapping -- [SKL|ZEN|A72] [population]`
//!
//! Defaults: A72 (the platform the paper highlights as out of reach for
//! counter-based tools), population 300.

use pmevo::evo::{run, EvoConfig, PipelineConfig};
use pmevo::machine::{platforms, MeasureConfig, Measurer};

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "A72".into());
    let population: usize = args
        .next()
        .map(|s| s.parse().expect("population must be a number"))
        .unwrap_or(300);

    let platform = match which.to_uppercase().as_str() {
        "SKL" => platforms::skl(),
        "ZEN" => platforms::zen(),
        "A72" => platforms::a72(),
        other => {
            eprintln!("unknown platform {other}; expected SKL, ZEN or A72");
            std::process::exit(1);
        }
    };

    println!(
        "PMEvo inference on {} ({} forms, {} ports, population {population})",
        platform.name(),
        platform.isa().len(),
        platform.num_ports()
    );

    let measurer = Measurer::new(&platform, MeasureConfig::default());
    let config = PipelineConfig {
        evo: EvoConfig {
            population_size: population,
            max_generations: 50,
            seed: 0xA72,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    };
    let result = run(
        platform.isa().len(),
        platform.num_ports(),
        |exps| exps.iter().map(|e| measurer.measure(e)).collect(),
        &config,
    );

    println!("\nTable-2-style characteristics:");
    println!("  benchmarking time      {:.1?}", result.benchmarking_time);
    println!("  inference time         {:.1?}", result.inference_time);
    println!(
        "  insns found congruent  {:.0}%  ({} classes / {} forms)",
        100.0 * result.congruent_fraction,
        result.num_classes,
        platform.isa().len()
    );
    println!("  number of µops         {}", result.num_distinct_uops());
    println!(
        "  training D_avg         {:.4} after {} generations",
        result.evo.objectives.error, result.evo.generations
    );

    // How well does the inferred mapping track the hidden ground truth
    // on the experiments it was trained on? (The real quality metric —
    // held-out benchmark accuracy — is what `table3`/`table4` measure.)
    let gt = platform.ground_truth();
    let sample: Vec<_> = (0..platform.isa().len() as u32)
        .step_by(17)
        .map(|i| pmevo::core::Experiment::singleton(pmevo::core::InstId(i)))
        .collect();
    println!("\nspot check (inferred vs ground-truth model, singleton experiments):");
    for e in sample.iter().take(8) {
        println!(
            "  {e}: inferred {:.2}, ground truth {:.2}",
            result.mapping.throughput(e),
            gt.throughput(e)
        );
    }
}
