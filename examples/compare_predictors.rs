//! Compare throughput predictors on port-mapping-bound experiments —
//! the scenario of paper §5.3, as a library-API walkthrough.
//!
//! Run with:
//! `cargo run --release --example compare_predictors -- [SKL|ZEN|A72] [n]`
//!
//! Defaults: ZEN, 400 experiments of size 5. The ground-truth oracle
//! ("uops.info") and the deliberately coarse llvm-mca-style model bracket
//! what a good and a stale port mapping look like. Measurement goes
//! through the [`SimBackend`] measurement backend — swap it for a
//! `ReplayBackend` to rerun the comparison from a recorded artifact.

use pmevo::baselines::{mca_like, oracle, IthemalConfig, IthemalLike};
use pmevo::core::{Experiment, InstId, MeasurementBackend, ThroughputPredictor};
use pmevo::machine::{platforms, MeasureConfig, SimBackend};
use pmevo::stats::{AccuracySummary, Heatmap, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "ZEN".into());
    let n: usize = args
        .next()
        .map(|s| s.parse().expect("n must be a number"))
        .unwrap_or(400);

    let platform = match which.to_uppercase().as_str() {
        "SKL" => platforms::skl(),
        "ZEN" => platforms::zen(),
        "A72" => platforms::a72(),
        other => {
            eprintln!("unknown platform {other}; expected SKL, ZEN or A72");
            std::process::exit(1);
        }
    };

    // Benchmark set: random multisets of size 5 (paper §5.3).
    let mut rng = StdRng::seed_from_u64(99);
    let experiments: Vec<Experiment> = (0..n)
        .map(|_| {
            let counts: Vec<(InstId, u32)> = (0..5)
                .map(|_| (InstId(rng.gen_range(0..platform.isa().len() as u32)), 1))
                .collect();
            Experiment::from_counts(&counts)
        })
        .collect();

    println!("measuring {n} experiments on {} ...", platform.name());
    let mut backend = SimBackend::new(platform.clone(), MeasureConfig::default());
    let measured = backend.measure_batch(&experiments);

    println!("training the Ithemal-like baseline ...");
    let ithemal = IthemalLike::train(&platform, &IthemalConfig::default());
    let uops_info = oracle(&platform);
    let mca = mca_like(&platform);
    let predictors: Vec<&dyn ThroughputPredictor> = vec![&uops_info, &mca, &ithemal];

    let mut table = Table::new(vec!["tool", "MAPE", "Pearson", "Spearman"]);
    for p in &predictors {
        let predictions: Vec<f64> = experiments.iter().map(|e| p.predict(e)).collect();
        let s = AccuracySummary::compute(&predictions, &measured);
        table.row(vec![
            p.name().to_string(),
            format!("{:.1}%", s.mape),
            format!("{:.2}", s.pearson),
            format!("{:.2}", s.spearman),
        ]);
    }
    println!("\n{table}");

    // A small heat map for the weakest predictor, Figure-7 style.
    let worst = &predictors[1];
    let mut heat = Heatmap::new(20, measured.iter().cloned().fold(1.0, f64::max));
    for (e, &m) in experiments.iter().zip(&measured) {
        heat.record(m, worst.predict(e));
    }
    println!(
        "{} on {} (points above the diagonal = over-estimation):\n{heat}",
        worst.name(),
        platform.name()
    );
}
