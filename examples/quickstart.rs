//! Quickstart: run an inference [`Session`] against a small toy machine
//! and inspect the report.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! A six-instruction machine (add, mul, div, load, store, vadd) is built
//! with an explicit ground-truth port mapping; PMEvo only ever observes
//! measured throughputs, infers a mapping, and the session reports how
//! well it tracks the hidden truth.

use pmevo::core::{Experiment, InstId, PortSet, ThreeLevelMapping, UopEntry};
use pmevo::isa::synth::tiny_isa;
use pmevo::machine::{MeasureConfig, Measurer, Platform, PlatformInfo};
use pmevo::Session;

fn toy_platform() -> Platform {
    let isa = tiny_isa();
    let u = |count, ports: &[usize]| UopEntry::new(count, PortSet::from_ports(ports));
    // Ground truth over 4 ports: 0,1 = ALUs, 2 = load, 3 = store.
    let decomp = vec![
        vec![u(1, &[0, 1])],          // add: either ALU
        vec![u(1, &[0])],             // mul: ALU 0 only
        vec![u(3, &[0])],             // div: blocks ALU 0 for 3 µops
        vec![u(1, &[2])],             // load
        vec![u(1, &[3]), u(1, &[2])], // store: store-data + address
        vec![u(1, &[1])],             // vadd: ALU 1 only
    ];
    let exec = (0..isa.len())
        .map(|_| pmevo::machine::platform::ExecParams {
            latency: 2,
            blocking: 1,
        })
        .collect();
    Platform::new(
        "TOY",
        PlatformInfo {
            manufacturer: "Example Corp".into(),
            processor: "Toy-1".into(),
            microarch: "Minimal".into(),
            ports_desc: "4".into(),
            isa_name: "tiny".into(),
            clock_ghz: 1.0,
        },
        isa,
        ThreeLevelMapping::new(4, decomp),
        exec,
        4,
        32,
    )
}

fn main() {
    let platform = toy_platform();

    println!("Inferring a port mapping for the {} machine ...", platform.name());
    let report = Session::builder()
        .platform(platform.clone())
        .measure_config(MeasureConfig::exact())
        .seed(1)
        .population(150)
        .max_generations(40)
        .accuracy_benchmarks(64)
        .benchmark_size(3)
        .build()
        .expect("the session configuration is valid")
        .run();

    println!("{report}\n");

    println!("inferred decompositions (ground truth is hidden from PMEvo):");
    for (id, form) in platform.isa().iter() {
        let entries: Vec<String> = report
            .mapping
            .decomposition(id)
            .iter()
            .map(|e| format!("{}×{}", e.count, e.ports))
            .collect();
        println!("  {:28} -> {}", form.name, entries.join(" + "));
    }

    println!("\npredicted vs measured on held-out experiments:");
    let measurer = Measurer::new(&platform, MeasureConfig::exact());
    let held_out = [
        Experiment::from_counts(&[(InstId(0), 2), (InstId(1), 1)]),
        Experiment::from_counts(&[(InstId(2), 1), (InstId(3), 2)]),
        Experiment::from_counts(&[(InstId(4), 2), (InstId(5), 2), (InstId(0), 1)]),
    ];
    for e in &held_out {
        let predicted = report.mapping.throughput(e);
        let measured = measurer.measure(e);
        println!("  {e}: predicted {predicted:.2}, measured {measured:.2}");
    }

    println!("\nthe full report serializes to JSON:");
    println!("{}", report.to_json_pretty());
}
