//! The paper's running example, end to end: the port mappings of
//! Figures 2 and 4, the throughput computation of Example 1, and the
//! equivalence of the bottleneck simulation algorithm with the linear
//! program (Appendix A).
//!
//! Run with: `cargo run --example bottleneck_algebra`

use pmevo::core::bottleneck::{lp_throughput, throughput_fast, MassVector};
use pmevo::core::{Experiment, InstId, PortSet, ThreeLevelMapping, TwoLevelMapping, UopEntry};

fn main() {
    // --- Figure 2: the two-level mapping. ---
    let mul = PortSet::from_ports(&[0]);
    let arith = PortSet::from_ports(&[0, 1]);
    let store = PortSet::from_ports(&[2]);
    let fig2 = TwoLevelMapping::new(3, vec![mul, arith, arith, store]);
    let (i_mul, i_add, _i_sub, i_store) = (InstId(0), InstId(1), InstId(2), InstId(3));

    // --- Example 1: e = {add ↦ 2, mul ↦ 1, store ↦ 1}. ---
    let e = Experiment::from_counts(&[(i_add, 2), (i_mul, 1), (i_store, 1)]);
    let tp = fig2.throughput(&e);
    println!("Example 1: t*({e}) = {tp}  (paper: 1.5 cycles)");
    assert_eq!(tp, 1.5);

    // The bottleneck set Q* = {P1, P2}: mass 3 over 2 ports (Example 2).
    let mut masses = MassVector::new();
    masses.add(arith, 2.0);
    masses.add(mul, 1.0);
    masses.add(store, 1.0);
    for q_size in 1..=3 {
        println!("  subsets of size {q_size} bound t* from below");
    }
    println!(
        "  bottleneck algorithm: {}, LP solver: {}",
        throughput_fast(&masses),
        lp_throughput(&masses)
    );

    // --- Figure 4: the three-level mapping with µop decomposition. ---
    let u1 = PortSet::from_ports(&[0]);
    let u2 = PortSet::from_ports(&[0, 1]);
    let u3 = PortSet::from_ports(&[2]);
    let fig4 = ThreeLevelMapping::new(
        3,
        vec![
            vec![UopEntry::new(2, u1)],                       // mul = 2×U1
            vec![UopEntry::new(1, u2)],                       // add = U2
            vec![UopEntry::new(1, u2)],                       // sub = U2
            vec![UopEntry::new(1, u2), UopEntry::new(1, u3)], // store = U2+U3
        ],
    );
    println!("\nFigure 4 mapping: V(m) = {}, {} distinct µops", fig4.volume(), fig4.num_distinct_uops());
    for (name, e) in [
        ("mul alone", Experiment::singleton(i_mul)),
        ("store alone", Experiment::singleton(i_store)),
        ("mul + store", Experiment::pair(i_mul, 1, i_store, 1)),
        ("add + store ×2", Experiment::pair(i_add, 1, i_store, 2)),
    ] {
        let t3 = fig4.throughput(&e);
        let lp = lp_throughput(&fig4.uop_masses(&e));
        println!("  {name:16} t* = {t3:.3}  (LP agrees: {lp:.3})");
        assert!((t3 - lp).abs() < 1e-9);
    }
    println!("\nAppendix A verified on these instances: bottleneck == LP optimum.");
}
