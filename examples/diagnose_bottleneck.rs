//! Bottleneck diagnosis: the use case the paper motivates in its
//! introduction — a port mapping is *interpretable*, so it can tell you
//! **why** a piece of code is slow, not just how slow it is.
//!
//! Run with: `cargo run --release --example diagnose_bottleneck`
//!
//! Takes a few experiment "kernels" on the simulated Skylake, reports
//! their bottleneck port set (what IACA calls the bottleneck resource),
//! an optimal port allocation (paper Figure 3 as text), and what happens
//! to the predicted throughput when the hot instruction is rewritten.

use pmevo::core::allocation::{bottleneck_set, optimal_allocation};
use pmevo::core::{render, Experiment};
use pmevo::machine::platforms;

fn main() {
    let skl = platforms::skl();
    let gt = skl.ground_truth();
    let find = |name: &str| skl.isa().find(name).expect("form exists");

    let imul = find("imul_r64_r64");
    let lea3 = find("lea3_r64_r64_r64");
    let add = find("add_r64_r64");
    let load = find("mov_r64_m64");
    let store = find("mov_m64_r64");

    println!("ground-truth decompositions (uops.info notation):");
    for id in [imul, lea3, add, load, store] {
        println!(
            "  {:24} {}",
            skl.isa().form(id).name,
            render::decomposition(gt.decomposition(id))
        );
    }

    // A multiply-heavy kernel: 3 multiplies, one add, one load.
    let hot = Experiment::from_counts(&[(imul, 3), (add, 1), (load, 1)]);
    let masses = gt.uop_masses(&hot);
    let b = bottleneck_set(&masses).expect("non-empty experiment");
    println!("\nkernel {hot}:");
    println!(
        "  throughput {:.2} cycles, bottleneck ports {} carrying {:.1} µops",
        b.throughput, b.ports, b.mass
    );

    let alloc = optimal_allocation(&masses).expect("non-empty experiment");
    println!("  optimal port allocation (paper Figure 3, as text):");
    for (p, load) in alloc.loads().iter().enumerate() {
        if *load > 0.0 {
            let bar = "#".repeat((load * 8.0).round() as usize);
            println!("    p{p}: {load:4.2} {bar}");
        }
    }

    // The fix the mapping suggests: multiplies pile on port 1, so
    // rewrite one multiply as shifts/adds (here: the lea3 form, which
    // the SKL-like machine also runs on port 1 — no win) and as plain
    // adds (ports 0/1/5/6 — a real win). The mapping predicts both.
    for (label, rewritten) in [
        (
            "rewrite one imul as lea3 (also port 1)",
            Experiment::from_counts(&[(imul, 2), (lea3, 1), (add, 1), (load, 1)]),
        ),
        (
            "rewrite one imul as two adds (ports 0156)",
            Experiment::from_counts(&[(imul, 2), (add, 3), (load, 1)]),
        ),
    ] {
        let t = gt.throughput(&rewritten);
        let nb = bottleneck_set(&gt.uop_masses(&rewritten)).expect("non-empty");
        println!(
            "\n  {label}:\n    predicted {t:.2} cycles (was {:.2}), bottleneck now {}",
            b.throughput, nb.ports
        );
    }
}
