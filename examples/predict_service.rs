//! The serving path end to end: infer a mapping, stand up a
//! [`pmevo::predict::Predictor`] over it, and answer batched basic-block
//! throughput queries.
//!
//! Run with: `cargo run --release --example predict_service`
//!
//! Two mappings end up in the store — the one a `Session` just inferred
//! for the TINY machine (via the [`SessionReport::predictor`] facade)
//! and the SKL ground truth registered as a second platform — and a
//! skewed query stream is served against both, demonstrating the LRU
//! cache and the bit-stable batch path.
//!
//! [`SessionReport::predictor`]: pmevo::SessionReport::predictor

use pmevo::machine::platforms;
use pmevo::predict::PredictorConfig;
use pmevo::Session;

fn main() -> Result<(), pmevo::SessionError> {
    // 1. Infer a port mapping for the TINY machine.
    println!("inferring a TINY mapping ...");
    let report = Session::builder()
        .platform(platforms::tiny())
        .seed(11)
        .population(60)
        .max_generations(10)
        .accuracy_benchmarks(32)
        .build()?
        .run();
    println!("{report}\n");

    // 2. Stand it up as a prediction service, then hot-deploy a second
    //    platform's mapping (here: the SKL ground truth, standing in for
    //    another inference run) into the live store — an atomic snapshot
    //    swap, exactly what the `pmevo-serve` daemon's `!reload` does.
    let service =
        report.predictor_with(PredictorConfig { workers: 2, cache_capacity: 4096 });
    let skl = platforms::skl();
    let skl_id = service.insert_mapping(
        skl.name(),
        skl.isa().forms().iter().map(|f| f.name.clone()).collect(),
        skl.ground_truth().clone(),
    );
    let store = service.snapshot();
    let tiny_id = store.latest("TINY").expect("registered by the facade");
    println!("serving: {}", store.inventory_json());

    // 3. Parse asm-like basic blocks against each mapping's namespace
    //    and answer them in one batch per mapping.
    let tiny_blocks = [
        "add_r64_r64_r64 x2; mul_r64_r64_r64",
        "load_r64_m64; store_m64_r64",
    ];
    let skl_blocks = ["add_r64_r64; imul_r64_r64; add_r32_r32 x2"];
    for (id, blocks) in [(tiny_id, &tiny_blocks[..]), (skl_id, &skl_blocks[..])] {
        let stored = store.get(id);
        let seqs: Vec<_> = blocks
            .iter()
            .map(|b| stored.parse(b).expect("block parses"))
            .collect();
        for (block, cycles) in blocks.iter().zip(service.predict_batch(id, &seqs)) {
            println!("{:8} {cycles:>6.2} cyc/iter  {block}", stored.label());
        }
    }

    // 4. A hot block asked again is answered from the LRU cache,
    //    bit-identically.
    let hot = store.get(tiny_id).parse(tiny_blocks[0]).expect("block parses");
    service.predict(tiny_id, &hot);
    let stats = service.stats();
    println!(
        "\nserved {} queries in {} batches, {} cache hit(s)",
        stats.queries, stats.batches, stats.cache_hits
    );
    Ok(())
}
