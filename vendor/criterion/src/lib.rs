//! Offline stand-in for the crates.io `criterion` crate (0.5 API surface).
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of criterion that the PMEvo benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`]/[`bench_with_input`](BenchmarkGroup::bench_with_input),
//! [`BenchmarkId`] and [`Bencher::iter`].
//!
//! Measurement is intentionally simple: each benchmark is warmed up
//! briefly, then timed in batches until a fixed time budget is spent, and
//! the mean/min per-iteration time is printed to stdout. There are no
//! statistics, plots or saved baselines — the point is that `cargo bench`
//! runs and reports stable, comparable numbers offline. Set
//! `CRITERION_BUDGET_MS` to change the per-benchmark time budget.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Top-level benchmark driver. One instance is threaded through every
/// `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts and ignores harness CLI arguments (`--bench`, filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 100 }
    }

    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&name.into(), 100, &mut f);
        self
    }

    /// Criterion's post-run hook; a no-op here (no plots to emit).
    pub fn final_summary(&mut self) {}
}

/// A named set of related benchmarks, printed under a common prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on timed iterations (smaller for very slow benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark label: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; [`iter`](Bencher::iter) times the
/// routine.
pub struct Bencher {
    samples: Vec<Duration>,
    min_samples: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: a few unrecorded runs so cold caches don't pollute the
        // first sample.
        for _ in 0..3 {
            black_box(routine());
        }
        let deadline = Instant::now() + budget();
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if self.samples.len() >= self.min_samples && Instant::now() >= deadline {
                break;
            }
            // Hard cap so a pathologically slow routine still terminates.
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }
}

fn run_one(label: &str, min_samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), min_samples };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<50} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        std::env::set_var("CRITERION_BUDGET_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
