//! Offline stand-in for the crates.io `rand` crate (0.8 API surface).
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact subset of `rand` 0.8 that the PMEvo workspace uses:
//!
//! * [`RngCore`], [`Rng`], [`SeedableRng`] with `gen`, `gen_range` and
//!   `gen_bool`,
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via
//!   SplitMix64, deterministic for a given `seed_from_u64` input,
//! * the [`distributions::Standard`] distribution for
//!   `bool`/`u32`/`u64`/`f64`.
//!
//! Determinism is the property the workspace actually relies on (every
//! entry point seeds an `StdRng` from a fixed `u64`); statistical quality
//! beyond "good enough for randomized tests" is a non-goal.

pub mod distributions {
    use super::Rng;

    /// The distribution behind [`Rng::gen`]: uniform over the full value
    /// range (`u32`/`u64`), over `[0, 1)` (`f64`), or fair-coin (`bool`).
    pub struct Standard;

    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Types usable with [`Rng::gen_range`].
    pub trait SampleUniform: Sized {}

    /// Range argument of [`Rng::gen_range`].
    pub trait SampleRange<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! uniform_int {
        ($($ty:ty),*) => {$(
            impl SampleUniform for $ty {}

            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Modulo draw; bias is negligible for the small spans
                    // (< 2^32) this workspace samples.
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + r) as $ty
                }
            }

            impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + r) as $ty
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {}

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            let u: f64 = Standard.sample(rng);
            self.start + u * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "gen_range: empty inclusive range");
            let u: f64 = Standard.sample(rng);
            lo + u * (hi - lo)
        }
    }
}

use distributions::{Distribution, SampleRange, SampleUniform, Standard};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ with SplitMix64
    /// seed expansion (Blackman & Vigna). Unlike crates.io `StdRng` the
    /// algorithm is part of the contract here — the workspace's
    /// reproducibility guarantees depend on it staying fixed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a generator
        /// mid-stream. Round-trips exactly through
        /// [`from_state`](Self::from_state).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restores a generator from a [`state`](Self::state) snapshot;
        /// the restored generator continues the original stream bit for
        /// bit.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
