//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API used by the PMEvo test
//! pyramid: the [`proptest!`] macro, `prop_assert*` macros, the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`prop_oneof!`] and [`collection::vec`].
//!
//! Differences from real proptest, deliberate for this offline stub:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   embedded in the assertion message instead of a minimized example.
//! * **Deterministic by construction.** Each `proptest!` test derives its
//!   RNG seed from the test's own name (FNV-1a), so a suite run is
//!   reproducible run-to-run and independent of test execution order.
//! * `PROPTEST_CASES` (env) overrides the per-test case count downward,
//!   which CI uses to keep wall-clock bounded.

use rand::rngs::StdRng;

#[doc(hidden)]
pub use rand as __rand;

/// Deterministic RNG for one `proptest!` test body (macro plumbing).
#[doc(hidden)]
pub fn rng_for_test(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Effective case count: the configured count, capped by `PROPTEST_CASES`
/// if that env var is set to a smaller value.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => match v.parse::<u32>() {
            Ok(n) => configured.min(n.max(1)),
            Err(_) => configured,
        },
        Err(_) => configured,
    }
}

/// Stable, order-independent per-test seed (FNV-1a over the test path).
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Explicit failure/rejection of one test case, for bodies that use the
/// `Result` return convention (`return Err(TestCaseError::fail(..))`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed.
    Fail(String),
    /// The case asked to be discarded. The stub treats this as a pass
    /// (it does not draw a replacement case).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    pub fn reject(reason: impl std::fmt::Display) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree: `generate` draws a value
/// directly and failures are reported un-shrunk.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size argument of [`vec()`]: a fixed length or a (half-open or
    /// inclusive) range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec size range");
            SizeRange { lo, hi_inclusive: hi }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// The test-block macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs from a deterministically
/// seeded [`StdRng`](rand::rngs::StdRng) and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg); $($rest)* }
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = $crate::resolve_cases(config.cases);
            let seed = $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::rng_for_test(seed);
            for _case in 0..cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                // Bodies may `return Err(TestCaseError::...)` like in real
                // proptest; plain `()` bodies fall through to `Ok(())`. The
                // closure is what scopes those `return`s, so it must stay.
                #[allow(clippy::redundant_closure_call)]
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(e) => panic!("{e}"),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = crate::seed_for_test("mod::a");
        assert_eq!(a, crate::seed_for_test("mod::a"));
        assert_ne!(a, crate::seed_for_test("mod::b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_strategy_respects_size((n, v) in (2usize..5).prop_flat_map(|n| {
            (Just(n), collection::vec(0.0..1.0f64, n))
        })) {
            prop_assert_eq!(v.len(), n);
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn oneof_hits_all_arms(x in prop_oneof![Just(1u32), Just(2u32)], y in 0u32..10) {
            prop_assert!(x == 1u32 || x == 2u32);
            prop_assert!(y < 10);
        }
    }
}
