//! `pmevo-cli` — command-line front end for the PMEvo reproduction.
//!
//! Subcommands:
//!
//! * `platforms` — list the built-in simulated machines;
//! * `infer --platform SKL [--population 300] [--algorithm pmevo]
//!   [--seed N] [--out mapping.json] [--report report.json]` — run an
//!   inference session and write the mapping (and optionally the full
//!   session report) as JSON;
//! * `show --platform SKL --mapping mapping.json [--limit 20]` — render
//!   a mapping in uops.info-style notation;
//! * `predict --platform SKL --mapping mapping.json --experiment
//!   "add_r64_r64:2,imul_r64_r64:1"` — predict (and measure) one
//!   experiment's throughput.
//!
//! Exit code 2 on usage errors.

use pmevo::baselines::{CountingAlgorithm, LpAlgorithm, RandomAlgorithm};
use pmevo::core::{render, Experiment, InstId, ThreeLevelMapping};
use pmevo::machine::{platforms, MeasureConfig, Measurer, Platform};
use pmevo::Session;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pmevo-cli <platforms|infer|show|predict> [flags]\n\
         \n\
         pmevo-cli platforms\n\
         pmevo-cli infer   --platform SKL [--population 300] [--algorithm pmevo]\n\
                           [--seed N] [--out mapping.json] [--report report.json]\n\
         pmevo-cli show    --platform SKL --mapping mapping.json [--limit 20]\n\
         pmevo-cli predict --platform SKL --mapping mapping.json \\\n\
                           --experiment \"add_r64_r64:2,imul_r64_r64:1\""
    );
    ExitCode::from(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn platform_from(args: &[String]) -> Result<Platform, ExitCode> {
    match flag(args, "--platform").as_deref().map(str::to_uppercase) {
        Some(ref s) if s == "SKL" => Ok(platforms::skl()),
        Some(ref s) if s == "ZEN" => Ok(platforms::zen()),
        Some(ref s) if s == "A72" => Ok(platforms::a72()),
        Some(ref s) if s == "TINY" => Ok(platforms::tiny()),
        Some(other) => {
            eprintln!("unknown platform {other}; expected SKL, ZEN, A72 or TINY");
            Err(ExitCode::from(2))
        }
        None => {
            eprintln!("missing --platform");
            Err(ExitCode::from(2))
        }
    }
}

fn load_mapping(args: &[String], platform: &Platform) -> Result<ThreeLevelMapping, ExitCode> {
    let Some(path) = flag(args, "--mapping") else {
        eprintln!("missing --mapping <file.json>");
        return Err(ExitCode::from(2));
    };
    let data = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return Err(ExitCode::from(1));
        }
    };
    let mapping = match ThreeLevelMapping::from_json(&data) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return Err(ExitCode::from(1));
        }
    };
    if mapping.num_insts() != platform.isa().len() || mapping.num_ports() != platform.num_ports() {
        eprintln!(
            "mapping shape ({} insts, {} ports) does not match platform {} ({} insts, {} ports)",
            mapping.num_insts(),
            mapping.num_ports(),
            platform.name(),
            platform.isa().len(),
            platform.num_ports()
        );
        return Err(ExitCode::from(1));
    }
    Ok(mapping)
}

/// Parses `"name:count,name:count"` into an experiment.
fn parse_experiment(platform: &Platform, spec: &str) -> Result<Experiment, String> {
    let mut counts: Vec<(InstId, u32)> = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, count) = match part.rsplit_once(':') {
            Some((n, c)) => (
                n.trim(),
                c.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad count in {part:?}"))?,
            ),
            None => (part, 1),
        };
        let id = platform
            .isa()
            .find(name)
            .ok_or_else(|| format!("unknown instruction form {name:?}"))?;
        counts.push((id, count));
    }
    if counts.is_empty() {
        return Err("empty experiment".to_string());
    }
    Ok(Experiment::from_counts(&counts))
}

fn cmd_platforms() -> ExitCode {
    for p in [
        platforms::skl(),
        platforms::zen(),
        platforms::a72(),
        platforms::tiny(),
    ] {
        println!(
            "{:4} {:10} {:8} {} forms, {} ports, fetch {}, window {}",
            p.name(),
            p.info().microarch,
            p.info().isa_name,
            p.isa().len(),
            p.num_ports(),
            p.fetch_width(),
            p.window_size()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_infer(args: &[String]) -> ExitCode {
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let population = flag(args, "--population")
        .map(|v| v.parse().expect("--population expects a number"))
        .unwrap_or(300);
    let seed = flag(args, "--seed")
        .map(|v| v.parse().expect("--seed expects a number"))
        .unwrap_or(0x90AD);
    let out = flag(args, "--out")
        .unwrap_or_else(|| format!("pmevo_{}.json", platform.name().to_lowercase()));

    let algorithm = flag(args, "--algorithm").unwrap_or_else(|| "pmevo".into());
    eprintln!(
        "inferring port mapping for {} with {algorithm} (population {population}, seed {seed}) ...",
        platform.name()
    );
    let builder = Session::builder()
        .platform(platform)
        .seed(seed)
        .population(population);
    let builder = match algorithm.as_str() {
        "pmevo" => builder,
        "counting" => builder.algorithm(CountingAlgorithm),
        "random" => builder.algorithm(RandomAlgorithm::new(seed)),
        "lp" => builder.algorithm(LpAlgorithm::default()),
        other => {
            eprintln!("unknown algorithm {other}; expected pmevo, counting, random or lp");
            return ExitCode::from(2);
        }
    };
    let report = match builder.build() {
        Ok(session) => session.run(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("{report}");
    if let Some(report_path) = flag(args, "--report") {
        if let Err(e) = std::fs::write(&report_path, report.to_json_pretty()) {
            eprintln!("cannot write {report_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("session report written to {report_path}");
    }
    let json = report.mapping.to_json_pretty();
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{out}");
    ExitCode::SUCCESS
}

fn cmd_show(args: &[String]) -> ExitCode {
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let mapping = match load_mapping(args, &platform) {
        Ok(m) => m,
        Err(c) => return c,
    };
    let limit = flag(args, "--limit")
        .map(|v| v.parse().expect("--limit expects a number"))
        .unwrap_or(usize::MAX);
    let s = render::summary(&mapping, |i| platform.isa().form(i).name.clone());
    for (name, decomp) in s.lines().iter().take(limit) {
        println!("{name:28} {decomp}");
    }
    if s.lines().len() > limit {
        println!("... ({} more)", s.lines().len() - limit);
    }
    println!();
    print!("port pressure:");
    for (p, mass) in s.port_usage().iter().enumerate() {
        print!("  p{p}={mass:.1}");
    }
    println!();
    ExitCode::SUCCESS
}

fn cmd_predict(args: &[String]) -> ExitCode {
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let mapping = match load_mapping(args, &platform) {
        Ok(m) => m,
        Err(c) => return c,
    };
    let Some(spec) = flag(args, "--experiment") else {
        eprintln!("missing --experiment \"form:count,form:count\"");
        return ExitCode::from(2);
    };
    let experiment = match parse_experiment(&platform, &spec) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let predicted = mapping.throughput(&experiment);
    let measured = Measurer::new(&platform, MeasureConfig::default()).measure(&experiment);
    println!("experiment: {experiment}");
    println!("predicted:  {predicted:.3} cycles");
    println!("measured:   {measured:.3} cycles (simulator)");
    println!(
        "rel. error: {:.1}%",
        100.0 * (predicted - measured).abs() / measured
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("platforms") => cmd_platforms(),
        Some("infer") => cmd_infer(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        _ => usage(),
    }
}
