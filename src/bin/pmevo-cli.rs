//! `pmevo-cli` — command-line front end for the PMEvo reproduction.
//!
//! Subcommands:
//!
//! * `platforms` — list the built-in simulated machines;
//! * `infer --platform SKL [--population 300] [--algorithm pmevo]
//!   [--seed N] [--out mapping.json] [--report report.json]` — run an
//!   inference session and write the mapping (and optionally the full
//!   session report) as JSON;
//! * `show --platform SKL --mapping mapping.json [--limit 20]` — render
//!   a mapping in uops.info-style notation;
//! * `predict --mapping SKL=skl.json [--mapping ZEN=zen.json ...]
//!   [--jobs 4] [--cache 65536] [--batch 1024]` — the serving mode:
//!   read line-oriented instruction sequences from stdin (optionally
//!   prefixed `PLATFORM:`), answer each as a JSON line on stdout
//!   through a cached, worker-pooled [`pmevo_predict::Predictor`];
//! * `predict --platform SKL --mapping mapping.json --experiment
//!   "add_r64_r64:2,imul_r64_r64:1"` — one-off mode: predict (and
//!   measure) one experiment's throughput.
//!
//! Exit code 2 on usage errors.

use pmevo::baselines::{CountingAlgorithm, LpAlgorithm, RandomAlgorithm};
use pmevo::core::json::{self, Value};
use pmevo::core::{render, Experiment, InstId, ThreeLevelMapping};
use pmevo::machine::{platforms, MeasureConfig, Measurer, Platform};
use pmevo::predict::{MappingId, MappingStore, Predictor, PredictorConfig};
use pmevo::Session;
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pmevo-cli <platforms|infer|show|predict> [flags]\n\
         \n\
         pmevo-cli platforms\n\
         pmevo-cli infer   --platform SKL [--population 300] [--algorithm pmevo]\n\
                           [--seed N] [--out mapping.json] [--report report.json]\n\
         pmevo-cli show    --platform SKL --mapping mapping.json [--limit 20]\n\
         pmevo-cli predict --mapping SKL=skl.json [--mapping ZEN=zen.json ...]\n\
                           [--jobs N] [--cache N] [--batch N]\n\
                           (streams stdin sequences like \"SKL: add_r64_r64; imul_r64_r64 x2\"\n\
                            to JSON throughputs on stdout)\n\
         pmevo-cli predict --platform SKL --mapping mapping.json \\\n\
                           --experiment \"add_r64_r64:2,imul_r64_r64:1\""
    );
    ExitCode::from(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_all(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

fn platform_from(args: &[String]) -> Result<Platform, ExitCode> {
    match flag(args, "--platform").as_deref().map(str::to_uppercase) {
        Some(ref s) if s == "SKL" => Ok(platforms::skl()),
        Some(ref s) if s == "ZEN" => Ok(platforms::zen()),
        Some(ref s) if s == "A72" => Ok(platforms::a72()),
        Some(ref s) if s == "TINY" => Ok(platforms::tiny()),
        Some(other) => {
            eprintln!("unknown platform {other}; expected SKL, ZEN, A72 or TINY");
            Err(ExitCode::from(2))
        }
        None => {
            eprintln!("missing --platform");
            Err(ExitCode::from(2))
        }
    }
}

fn load_mapping(args: &[String], platform: &Platform) -> Result<ThreeLevelMapping, ExitCode> {
    let Some(path) = flag(args, "--mapping") else {
        eprintln!("missing --mapping <file.json>");
        return Err(ExitCode::from(2));
    };
    let data = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return Err(ExitCode::from(1));
        }
    };
    let mapping = match ThreeLevelMapping::from_json(&data) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return Err(ExitCode::from(1));
        }
    };
    if mapping.num_insts() != platform.isa().len() || mapping.num_ports() != platform.num_ports() {
        eprintln!(
            "mapping shape ({} insts, {} ports) does not match platform {} ({} insts, {} ports)",
            mapping.num_insts(),
            mapping.num_ports(),
            platform.name(),
            platform.isa().len(),
            platform.num_ports()
        );
        return Err(ExitCode::from(1));
    }
    Ok(mapping)
}

/// Parses `"name:count,name:count"` into an experiment.
fn parse_experiment(platform: &Platform, spec: &str) -> Result<Experiment, String> {
    let mut counts: Vec<(InstId, u32)> = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, count) = match part.rsplit_once(':') {
            Some((n, c)) => (
                n.trim(),
                c.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad count in {part:?}"))?,
            ),
            None => (part, 1),
        };
        let id = platform
            .isa()
            .find(name)
            .ok_or_else(|| format!("unknown instruction form {name:?}"))?;
        counts.push((id, count));
    }
    if counts.is_empty() {
        return Err("empty experiment".to_string());
    }
    Ok(Experiment::from_counts(&counts))
}

fn cmd_platforms() -> ExitCode {
    for p in [
        platforms::skl(),
        platforms::zen(),
        platforms::a72(),
        platforms::tiny(),
    ] {
        println!(
            "{:4} {:10} {:8} {} forms, {} ports, fetch {}, window {}",
            p.name(),
            p.info().microarch,
            p.info().isa_name,
            p.isa().len(),
            p.num_ports(),
            p.fetch_width(),
            p.window_size()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_infer(args: &[String]) -> ExitCode {
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let population = flag(args, "--population")
        .map(|v| v.parse().expect("--population expects a number"))
        .unwrap_or(300);
    let seed = flag(args, "--seed")
        .map(|v| v.parse().expect("--seed expects a number"))
        .unwrap_or(0x90AD);
    let out = flag(args, "--out")
        .unwrap_or_else(|| format!("pmevo_{}.json", platform.name().to_lowercase()));

    let algorithm = flag(args, "--algorithm").unwrap_or_else(|| "pmevo".into());
    eprintln!(
        "inferring port mapping for {} with {algorithm} (population {population}, seed {seed}) ...",
        platform.name()
    );
    let builder = Session::builder()
        .platform(platform)
        .seed(seed)
        .population(population);
    let builder = match algorithm.as_str() {
        "pmevo" => builder,
        "counting" => builder.algorithm(CountingAlgorithm),
        "random" => builder.algorithm(RandomAlgorithm::new(seed)),
        "lp" => builder.algorithm(LpAlgorithm::default()),
        other => {
            eprintln!("unknown algorithm {other}; expected pmevo, counting, random or lp");
            return ExitCode::from(2);
        }
    };
    let report = match builder.build() {
        Ok(session) => session.run(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("{report}");
    if let Some(report_path) = flag(args, "--report") {
        if let Err(e) = std::fs::write(&report_path, report.to_json_pretty()) {
            eprintln!("cannot write {report_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("session report written to {report_path}");
    }
    let json = report.mapping.to_json_pretty();
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{out}");
    ExitCode::SUCCESS
}

fn cmd_show(args: &[String]) -> ExitCode {
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let mapping = match load_mapping(args, &platform) {
        Ok(m) => m,
        Err(c) => return c,
    };
    let limit = flag(args, "--limit")
        .map(|v| v.parse().expect("--limit expects a number"))
        .unwrap_or(usize::MAX);
    let s = render::summary(&mapping, |i| platform.isa().form(i).name.clone());
    for (name, decomp) in s.lines().iter().take(limit) {
        println!("{name:28} {decomp}");
    }
    if s.lines().len() > limit {
        println!("... ({} more)", s.lines().len() - limit);
    }
    println!();
    print!("port pressure:");
    for (p, mass) in s.port_usage().iter().enumerate() {
        print!("  p{p}={mass:.1}");
    }
    println!();
    ExitCode::SUCCESS
}

/// Loads the `--mapping` flags of serving mode into a store. Accepts
/// `NAME=file.json` (NAME must be a built-in platform, which provides
/// the instruction names) or a bare `file.json` with `--platform`.
fn build_store(args: &[String]) -> Result<MappingStore, ExitCode> {
    let mut store = MappingStore::new();
    let specs = flag_all(args, "--mapping");
    if specs.is_empty() {
        eprintln!("missing --mapping NAME=file.json (or --platform P --mapping file.json)");
        return Err(ExitCode::from(2));
    }
    for spec in &specs {
        let (platform, path) = match spec.split_once('=') {
            Some((name, path)) => match platforms::by_name(name) {
                Some(p) => (p, path.to_owned()),
                None => {
                    eprintln!("unknown platform {name:?} in --mapping {spec}; expected SKL, ZEN, A72 or TINY");
                    return Err(ExitCode::from(2));
                }
            },
            None => (platform_from(args)?, spec.clone()),
        };
        let shaped = load_mapping(&["--mapping".to_owned(), path.clone()], &platform)?;
        let names = platform.isa().forms().iter().map(|f| f.name.clone()).collect();
        store.insert(platform.name(), names, shaped);
    }
    Ok(store)
}

/// Serving mode: stream sequences from stdin through a [`Predictor`],
/// one JSON result line per input line, in input order.
fn cmd_predict_stream(args: &[String]) -> ExitCode {
    let store = match build_store(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let jobs = flag(args, "--jobs")
        .map(|v| v.parse().expect("--jobs expects a number"))
        .unwrap_or(1);
    let cache = flag(args, "--cache")
        .map(|v| v.parse().expect("--cache expects a number"))
        .unwrap_or(1 << 16);
    let batch = flag(args, "--batch")
        .map(|v| v.parse::<usize>().expect("--batch expects a number"))
        .unwrap_or(1024)
        .max(1);
    // Unprefixed lines go to the latest version of the first-loaded
    // name, matching how prefixed lines resolve.
    let first_name = store.get(store.ids().next().expect("store is non-empty")).name().to_owned();
    let default_mapping = store.latest(&first_name).expect("store is non-empty");
    let predictor = Predictor::new(store, PredictorConfig { workers: jobs, cache_capacity: cache });
    let labels: Vec<String> = predictor
        .store()
        .ids()
        .map(|id| predictor.store().get(id).label())
        .collect();

    let stdin = std::io::stdin();
    if std::io::IsTerminal::is_terminal(&stdin) {
        eprintln!(
            "reading sequences from stdin (one per line, Ctrl-D to finish); \
             use --experiment \"form:count,...\" for a one-off prediction"
        );
    }
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // One entry per pending input line: a routed sequence or a parse
    // failure (kept in the batch so output stays strictly line-ordered).
    enum Entry {
        Seq(MappingId, Experiment),
        Failed(String),
    }
    let mut pending: Vec<(u64, Entry)> = Vec::with_capacity(batch);
    let mut errors = 0u64;
    let flush = |pending: &mut Vec<(u64, Entry)>, out: &mut dyn Write| {
        // The predictor groups the window per mapping; results come back
        // in input order and are re-interleaved with the failed lines.
        let (slots, queries): (Vec<usize>, Vec<(MappingId, Experiment)>) = pending
            .iter()
            .enumerate()
            .filter_map(|(slot, (_, e))| match e {
                Entry::Seq(id, seq) => Some((slot, (*id, seq.clone()))),
                Entry::Failed(_) => None,
            })
            .unzip();
        let mut cycles: Vec<Option<f64>> = vec![None; pending.len()];
        for (slot, t) in slots.into_iter().zip(predictor.predict_routed(&queries)) {
            cycles[slot] = Some(t);
        }
        for ((line, entry), t) in pending.drain(..).zip(cycles) {
            let record = match entry {
                Entry::Seq(id, _) => Value::Obj(vec![
                    ("line".into(), Value::UInt(line)),
                    ("mapping".into(), Value::Str(labels[id.index()].clone())),
                    ("cycles".into(), Value::Num(t.expect("every sequence predicted"))),
                ]),
                Entry::Failed(message) => Value::Obj(vec![
                    ("line".into(), Value::UInt(line)),
                    ("error".into(), Value::Str(message)),
                ]),
            };
            writeln!(out, "{}", json::write_compact(&record)).expect("write stdout");
        }
    };

    for (idx, line) in stdin.lock().lines().enumerate() {
        let line_no = idx as u64 + 1;
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin read error at line {line_no}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // An optional `PLATFORM:` prefix routes the line to a specific
        // stored mapping; the prefix is only consumed when it names one
        // (case-insensitively, like every other platform lookup).
        let route = |name: &str| {
            let name = name.trim();
            predictor
                .store()
                .latest(name)
                .or_else(|| predictor.store().latest(&name.to_uppercase()))
        };
        let (id, seq_text) = match line.split_once(':') {
            Some((name, rest)) => match route(name) {
                Some(id) => (id, rest),
                None => (default_mapping, line.as_str()),
            },
            None => (default_mapping, line.as_str()),
        };
        match predictor.store().get(id).parse(seq_text) {
            Ok(e) => pending.push((line_no, Entry::Seq(id, e))),
            Err(pmevo::core::SequenceParseError::Empty) => {} // blank/comment line
            Err(err) => {
                errors += 1;
                pending.push((line_no, Entry::Failed(err.to_string())));
            }
        }
        if pending.len() >= batch {
            flush(&mut pending, &mut out);
        }
    }
    flush(&mut pending, &mut out);
    out.flush().expect("flush stdout");
    let stats = predictor.stats();
    eprintln!(
        "predicted {} sequences in {} batches ({} workers, {:.1}% cache hits, {} errors)",
        stats.queries,
        stats.batches,
        predictor.workers(),
        100.0 * stats.hit_rate(),
        errors
    );
    ExitCode::SUCCESS
}

fn cmd_predict(args: &[String]) -> ExitCode {
    let Some(spec) = flag(args, "--experiment") else {
        // No --experiment: the streaming serving mode.
        return cmd_predict_stream(args);
    };
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let mapping = match load_mapping(args, &platform) {
        Ok(m) => m,
        Err(c) => return c,
    };
    let experiment = match parse_experiment(&platform, &spec) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let predicted = mapping.throughput(&experiment);
    let measured = Measurer::new(&platform, MeasureConfig::default()).measure(&experiment);
    println!("experiment: {experiment}");
    println!("predicted:  {predicted:.3} cycles");
    println!("measured:   {measured:.3} cycles (simulator)");
    println!(
        "rel. error: {:.1}%",
        100.0 * (predicted - measured).abs() / measured
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("platforms") => cmd_platforms(),
        Some("infer") => cmd_infer(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        _ => usage(),
    }
}
