//! `pmevo-cli` — command-line front end for the PMEvo reproduction.
//!
//! Subcommands:
//!
//! * `platforms` — list the built-in simulated machines;
//! * `infer --platform SKL [--population 300] [--algorithm pmevo]
//!   [--seed N] [--out mapping.json] [--format json|bin]
//!   [--report report.json]` — run an inference session and write the
//!   mapping (and optionally the full session report); `--format bin`
//!   writes the compact binary artifact ([`MappingArtifact`]), which
//!   embeds the platform's instruction-name table; `--islands N` evolves
//!   N subpopulations over one worker pool, `--checkpoint FILE` writes a
//!   resumable evolution-state artifact every `--checkpoint-every`
//!   generations, and `--resume` continues from it bit-identically
//!   (flags not repeated are adopted from the artifact);
//! * `show --platform SKL --mapping mapping.json [--limit 20]` — render
//!   a mapping in uops.info-style notation;
//! * `convert --in artifact --out artifact [--platform SKL]` — convert
//!   a mapping artifact between JSON and the compact binary format (the
//!   direction is sniffed from the input's magic); JSON inputs need
//!   `--platform` to supply the name table the binary format embeds;
//! * `predict --mapping SKL=skl.json [--mapping ZEN=zen.json ...]
//!   [--jobs 4] [--cache 65536] [--batch 1024]` — the serving mode:
//!   read line-oriented instruction sequences from stdin (optionally
//!   prefixed `PLATFORM:`), answer each as a JSON line on stdout
//!   through a cached, worker-pooled [`pmevo_predict::Predictor`];
//! * `predict --platform SKL --mapping mapping.json --experiment
//!   "add_r64_r64:2,imul_r64_r64:1"` — one-off mode: predict (and
//!   measure) one experiment's throughput;
//! * `predict --corpus blocks.txt --isa x86 --uarch skl
//!   --mapping SKL=skl.json` — corpus replay: parse a BHive-style file
//!   of disassembled basic blocks (AT&T or Intel syntax), resolve each
//!   instruction onto the target microarchitecture's form universe via
//!   [`pmevo::x86`], predict every fully-mapped block's throughput, and
//!   finish with one deterministic coverage/accounting JSON line;
//! * `client --connect HOST:PORT | --unix PATH` — pipe stdin to a
//!   running `pmevo-serve` daemon and its responses to stdout (the
//!   socket-framed equivalent of `predict`'s stdin/stdout pipe).
//!
//! Exit code 2 on usage errors, 1 on malformed flag values and runtime
//! failures; never a panic on the serving paths.

use pmevo::baselines::{CountingAlgorithm, LpAlgorithm, RandomAlgorithm};
use pmevo::core::json::{self, Value};
use pmevo::core::{
    render, suggest, Experiment, InstId, MappingArtifact, SequenceParseError, ServeRecord,
    ThreeLevelMapping,
};
use pmevo::machine::{platforms, MeasureConfig, Measurer, Platform};
use pmevo::core::{MeasurementBudget, SelectionPolicy};
use pmevo::predict::{MappingId, MappingStore, Predictor, PredictorConfig};
use pmevo::serve::flags::{byte_flag, flag, flag_all, num_flag, positive_flag};
use pmevo::serve::{load_spec_artifact, route_line, store_from_specs};
use pmevo::{Session, SessionCheckpoint};
use std::io::{BufRead, Read, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pmevo-cli <platforms|infer|show|predict|convert|client> [flags]\n\
         \n\
         pmevo-cli platforms\n\
         pmevo-cli infer   --platform SKL [--population 300] [--generations N]\n\
                           [--algorithm pmevo] [--seed N] [--out mapping.json]\n\
                           [--format json|bin] [--report report.json]\n\
                           [--islands N] [--selection one-shot|disagreement|uniform]\n\
                           [--top-k N] [--budget MEASUREMENTS]\n\
                           [--checkpoint FILE [--checkpoint-every GENS] [--resume]\n\
                            [--halt-after-checkpoints N]]\n\
                           (--resume continues from FILE bit-identically; flags\n\
                            not repeated are adopted from the artifact)\n\
         pmevo-cli show    --platform SKL --mapping mapping.json [--limit 20]\n\
         pmevo-cli convert --in artifact --out artifact [--platform SKL]\n\
                           (JSON <-> compact binary; JSON to binary needs\n\
                            --platform for the instruction-name table)\n\
         pmevo-cli predict --mapping SKL=skl.json [--mapping ZEN=zen.json ...]\n\
                           [--jobs N] [--cache N] [--batch N] [--store-budget BYTES]\n\
                           (streams stdin sequences like \"SKL: add_r64_r64; imul_r64_r64 x2\"\n\
                            to JSON throughputs on stdout)\n\
         pmevo-cli predict --platform SKL --mapping mapping.json \\\n\
                           --experiment \"add_r64_r64:2,imul_r64_r64:1\"\n\
         pmevo-cli predict --corpus blocks.txt --uarch skl [--isa x86]\n\
                           --mapping SKL=skl.json [--jobs N] [--cache N]\n\
                           (replays a basic-block corpus: one JSON line per\n\
                            block, then one accounting line, on stdout)\n\
         pmevo-cli client  --connect HOST:PORT | --unix PATH\n\
                           (pipes stdin to a pmevo-serve daemon, responses to stdout)"
    );
    ExitCode::from(2)
}

/// Resolves the numeric flag `name` (default `default`); on a malformed
/// value, prints the error and the usage text and fails with exit 1.
fn parsed_flag<T>(args: &[String], name: &str, default: T) -> Result<T, ExitCode>
where
    T: std::str::FromStr + std::fmt::Display,
{
    num_flag(args, name, default).map_err(|message| {
        eprintln!("{message}");
        let _ = usage();
        ExitCode::FAILURE
    })
}

/// [`parsed_flag`] for counts that must be at least 1.
fn positive_parsed_flag(args: &[String], name: &str, default: usize) -> Result<usize, ExitCode> {
    positive_flag(args, name, default).map_err(|message| {
        eprintln!("{message}");
        let _ = usage();
        ExitCode::FAILURE
    })
}

fn platform_from(args: &[String]) -> Result<Platform, ExitCode> {
    match flag(args, "--platform").as_deref().map(str::to_uppercase) {
        Some(ref s) if s == "SKL" => Ok(platforms::skl()),
        Some(ref s) if s == "ZEN" => Ok(platforms::zen()),
        Some(ref s) if s == "A72" => Ok(platforms::a72()),
        Some(ref s) if s == "TINY" => Ok(platforms::tiny()),
        Some(other) => {
            eprintln!("unknown platform {other}; expected SKL, ZEN, A72 or TINY");
            Err(ExitCode::from(2))
        }
        None => {
            eprintln!("missing --platform");
            Err(ExitCode::from(2))
        }
    }
}

fn load_mapping(args: &[String], platform: &Platform) -> Result<ThreeLevelMapping, ExitCode> {
    let Some(path) = flag(args, "--mapping") else {
        eprintln!("missing --mapping <file.json>");
        return Err(ExitCode::from(2));
    };
    let data = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return Err(ExitCode::from(1));
        }
    };
    let mapping = match ThreeLevelMapping::from_json(&data) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return Err(ExitCode::from(1));
        }
    };
    if mapping.num_insts() != platform.isa().len() || mapping.num_ports() != platform.num_ports() {
        eprintln!(
            "mapping shape ({} insts, {} ports) does not match platform {} ({} insts, {} ports)",
            mapping.num_insts(),
            mapping.num_ports(),
            platform.name(),
            platform.isa().len(),
            platform.num_ports()
        );
        return Err(ExitCode::from(1));
    }
    Ok(mapping)
}

/// Parses `"name:count,name:count"` into an experiment.
fn parse_experiment(platform: &Platform, spec: &str) -> Result<Experiment, String> {
    let mut counts: Vec<(InstId, u32)> = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, count) = match part.rsplit_once(':') {
            Some((n, c)) => (
                n.trim(),
                c.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad count in {part:?}"))?,
            ),
            None => (part, 1),
        };
        let id = platform.isa().find(name).ok_or_else(|| {
            let names = platform.isa().forms().iter().map(|f| f.name.as_str());
            match suggest::nearest(name, names) {
                Some(s) => format!("unknown instruction form {name:?} (did you mean {s:?}?)"),
                None => format!("unknown instruction form {name:?}"),
            }
        })?;
        counts.push((id, count));
    }
    if counts.is_empty() {
        return Err("empty experiment".to_string());
    }
    Ok(Experiment::from_counts(&counts))
}

fn cmd_platforms() -> ExitCode {
    for p in [
        platforms::skl(),
        platforms::zen(),
        platforms::a72(),
        platforms::tiny(),
    ] {
        println!(
            "{:4} {:10} {:8} {} forms, {} ports, fetch {}, window {}",
            p.name(),
            p.info().microarch,
            p.info().isa_name,
            p.isa().len(),
            p.num_ports(),
            p.fetch_width(),
            p.window_size()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_infer(args: &[String]) -> ExitCode {
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let mut population = match positive_parsed_flag(args, "--population", 300) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let mut seed = match parsed_flag(args, "--seed", 0x90ADu64) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let generations = match parsed_flag(args, "--generations", 0u32) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let mut islands = match positive_parsed_flag(args, "--islands", 1) {
        Ok(v) => v as u32,
        Err(c) => return c,
    };
    let top_k = match positive_parsed_flag(args, "--top-k", 16) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let mut selection = match flag(args, "--selection").as_deref() {
        None | Some("one-shot") => SelectionPolicy::OneShot,
        Some("disagreement") => SelectionPolicy::Disagreement { top_k },
        Some("uniform") => SelectionPolicy::Uniform { top_k },
        Some(other) => {
            eprintln!("unknown --selection {other}; expected one-shot, disagreement or uniform");
            return ExitCode::from(2);
        }
    };
    let mut budget = match parsed_flag(args, "--budget", 0u64) {
        Ok(0) => MeasurementBudget::UNLIMITED,
        Ok(n) => MeasurementBudget::measurements(n),
        Err(c) => return c,
    };
    let checkpoint_path = flag(args, "--checkpoint");
    let checkpoint_every = match parsed_flag(args, "--checkpoint-every", 8u32) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let halt_after = match parsed_flag(args, "--halt-after-checkpoints", 0u32) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let resume = args.iter().any(|a| a == "--resume");
    // A resumed run adopts the artifact's header for every flag the user
    // did not repeat, so `--checkpoint FILE --resume` alone continues a
    // run bit-identically; explicitly conflicting flags are rejected by
    // the session builder.
    let snapshot = if resume {
        let Some(path) = checkpoint_path.as_deref() else {
            eprintln!("--resume needs --checkpoint FILE (the artifact to continue from)");
            return ExitCode::from(2);
        };
        match SessionCheckpoint::load(std::path::Path::new(path)) {
            Ok(snapshot) => {
                let explicit = |name: &str| flag(args, name).is_some();
                if !explicit("--seed") {
                    seed = snapshot.seed;
                }
                if !explicit("--population") {
                    population = snapshot.population_size as usize;
                }
                if !explicit("--islands") {
                    islands = snapshot.islands;
                }
                if !explicit("--selection") {
                    selection = snapshot.selection;
                }
                if !explicit("--budget") {
                    budget = snapshot.budget;
                }
                Some(snapshot)
            }
            Err(e) => {
                eprintln!("error: cannot resume: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let format = flag(args, "--format").unwrap_or_else(|| "json".into());
    if format != "json" && format != "bin" {
        eprintln!("unknown --format {format}; expected json or bin");
        return ExitCode::from(2);
    }
    let out = flag(args, "--out")
        .unwrap_or_else(|| format!("pmevo_{}.{format}", platform.name().to_lowercase()));
    // The binary artifact embeds the instruction-name table; capture it
    // before the platform moves into the session builder.
    let inst_names: Vec<String> =
        platform.isa().forms().iter().map(|f| f.name.clone()).collect();

    let algorithm = flag(args, "--algorithm").unwrap_or_else(|| "pmevo".into());
    if algorithm != "pmevo" && (checkpoint_path.is_some() || islands > 1) {
        eprintln!("--islands and --checkpoint are only supported by the pmevo algorithm");
        return ExitCode::from(2);
    }
    eprintln!(
        "inferring port mapping for {} with {algorithm} (population {population}, seed {seed}) ...",
        platform.name()
    );
    let mut builder = Session::builder()
        .platform(platform)
        .seed(seed)
        .population(population)
        .islands(islands)
        .selection(selection)
        .budget(budget);
    if generations > 0 {
        builder = builder.max_generations(generations);
    }
    if let Some(path) = checkpoint_path {
        builder = builder.checkpoint(path, checkpoint_every);
    }
    if let Some(snapshot) = snapshot {
        builder = builder.resume_from(snapshot);
    }
    if halt_after > 0 {
        builder = builder.halt_after_checkpoints(halt_after);
    }
    let builder = match algorithm.as_str() {
        "pmevo" => builder,
        "counting" => builder.algorithm(CountingAlgorithm),
        "random" => builder.algorithm(RandomAlgorithm::new(seed)),
        "lp" => builder.algorithm(LpAlgorithm::default()),
        other => {
            eprintln!("unknown algorithm {other}; expected pmevo, counting, random or lp");
            return ExitCode::from(2);
        }
    };
    let report = match builder.build() {
        Ok(session) => session.run(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("{report}");
    if let Some(report_path) = flag(args, "--report") {
        if let Err(e) = std::fs::write(&report_path, report.to_json_pretty()) {
            eprintln!("cannot write {report_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("session report written to {report_path}");
    }
    let artifact_bytes = if format == "bin" {
        MappingArtifact::new(inst_names, report.mapping.clone()).to_bytes()
    } else {
        report.mapping.to_json_pretty().into_bytes()
    };
    if let Err(e) = std::fs::write(&out, artifact_bytes) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{out}");
    ExitCode::SUCCESS
}

/// `convert`: re-encode a mapping artifact between JSON and the compact
/// binary format, sniffing the direction from the input's content. The
/// binary format embeds the instruction-name table, so converting *to*
/// it needs `--platform`; converting *from* it drops the table (the
/// JSON artifact format has none — it is the mapping alone).
fn cmd_convert(args: &[String]) -> ExitCode {
    let (Some(input), Some(out)) = (flag(args, "--in"), flag(args, "--out")) else {
        eprintln!("convert needs --in <artifact> and --out <artifact>");
        return ExitCode::from(2);
    };
    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let written = if MappingArtifact::sniff(&bytes) {
        match MappingArtifact::from_bytes(&bytes) {
            Ok(artifact) => std::fs::write(&out, artifact.mapping().to_json_pretty()),
            Err(e) => {
                eprintln!("cannot decode {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // JSON in: the name table must come from a built-in platform.
        if flag(args, "--platform").is_none() {
            eprintln!(
                "converting a JSON artifact to binary needs --platform \
                 (the binary format embeds the platform's instruction names)"
            );
            return ExitCode::from(2);
        }
        let platform = match platform_from(args) {
            Ok(p) => p,
            Err(c) => return c,
        };
        match load_spec_artifact(platform.name(), &input) {
            Ok((_, loaded)) => {
                let artifact = MappingArtifact::new(loaded.inst_names, loaded.mapping);
                std::fs::write(&out, artifact.to_bytes())
            }
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Err(e) = written {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{out}");
    ExitCode::SUCCESS
}

fn cmd_show(args: &[String]) -> ExitCode {
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let limit = match parsed_flag(args, "--limit", usize::MAX) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let mapping = match load_mapping(args, &platform) {
        Ok(m) => m,
        Err(c) => return c,
    };
    let s = render::summary(&mapping, |i| platform.isa().form(i).name.clone());
    for (name, decomp) in s.lines().iter().take(limit) {
        println!("{name:28} {decomp}");
    }
    if s.lines().len() > limit {
        println!("... ({} more)", s.lines().len() - limit);
    }
    println!();
    print!("port pressure:");
    for (p, mass) in s.port_usage().iter().enumerate() {
        print!("  p{p}={mass:.1}");
    }
    println!();
    ExitCode::SUCCESS
}

/// Loads the `--mapping` flags of serving mode into a store. Accepts
/// `NAME=file` (a built-in platform name, which provides the
/// instruction names, or any name with a binary artifact, which embeds
/// them) or a bare `file.json` with `--platform`; bare specs are
/// normalized to `NAME=path` so the daemon and the offline pipe share
/// one loader ([`store_from_specs`]). `--store-budget` caps the bytes
/// of mapping payloads held resident; the rest reload lazily.
fn build_store(args: &[String]) -> Result<MappingStore, ExitCode> {
    let budget = byte_flag(args, "--store-budget").map_err(|message| {
        eprintln!("{message}");
        let _ = usage();
        ExitCode::FAILURE
    })?;
    let mut specs = flag_all(args, "--mapping");
    if specs.iter().any(|s| !s.contains('=')) {
        let platform = platform_from(args)?;
        for spec in &mut specs {
            if !spec.contains('=') {
                *spec = format!("{}={spec}", platform.name());
            }
        }
    }
    store_from_specs(&specs, budget).map_err(|message| {
        eprintln!("error: {message}");
        usage()
    })
}

/// Serving mode: stream sequences from stdin through a [`Predictor`],
/// one JSON result line per input line, in input order.
fn cmd_predict_stream(args: &[String]) -> ExitCode {
    // Flags are validated before any file is touched, so a typo'd
    // `--jobs abc` is reported as itself, not masked by a store error.
    let jobs = match positive_parsed_flag(args, "--jobs", 1) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let cache = match parsed_flag(args, "--cache", 1usize << 16) {
        Ok(v) => v,
        Err(c) => return c,
    };
    // `--batch 0` would silently turn the flush threshold into
    // "always", so zero is rejected rather than clamped.
    let batch = match positive_parsed_flag(args, "--batch", 1024) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let store = match build_store(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    // Unprefixed lines go to the latest version of the first-loaded
    // name, matching how prefixed lines resolve. `build_store` already
    // refused an empty store, so the first id exists.
    let Some(first_id) = store.ids().next() else {
        eprintln!("error: at least one --mapping NAME=file.json is required");
        return ExitCode::from(2);
    };
    let default_name = store.get(first_id).name().to_owned();
    let predictor = Predictor::new(store, PredictorConfig { workers: jobs, cache_capacity: cache });
    let store = predictor.snapshot();
    let labels: Vec<String> = store.ids().map(|id| store.get(id).label()).collect();

    let stdin = std::io::stdin();
    if std::io::IsTerminal::is_terminal(&stdin) {
        eprintln!(
            "reading sequences from stdin (one per line, Ctrl-D to finish); \
             use --experiment \"form:count,...\" for a one-off prediction"
        );
    }
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // One entry per pending input line: a routed sequence or a parse
    // failure (kept in the batch so output stays strictly line-ordered).
    enum Entry {
        Seq(MappingId, Experiment),
        Failed(String),
    }
    let mut pending: Vec<(u64, Entry)> = Vec::with_capacity(batch);
    let mut errors = 0u64;
    let flush = |pending: &mut Vec<(u64, Entry)>, out: &mut dyn Write| {
        // The predictor groups the window per mapping; results come back
        // in input order and are re-interleaved with the failed lines.
        let (slots, queries): (Vec<usize>, Vec<(MappingId, Experiment)>) = pending
            .iter()
            .enumerate()
            .filter_map(|(slot, (_, e))| match e {
                Entry::Seq(id, seq) => Some((slot, (*id, seq.clone()))),
                Entry::Failed(_) => None,
            })
            .unzip();
        let mut cycles = vec![None; pending.len()];
        for (slot, t) in slots.into_iter().zip(predictor.try_predict_routed(&queries)) {
            cycles[slot] = Some(t);
        }
        for ((line, entry), t) in pending.drain(..).zip(cycles) {
            let record = match (entry, t) {
                (Entry::Seq(id, _), Some(Ok(cycles))) => {
                    ServeRecord::Cycles { line, mapping: labels[id.index()].clone(), cycles }
                }
                // An evicted payload whose lazy reload failed (artifact
                // gone from under a budgeted store): the error names the
                // artifact path, and the stream keeps going.
                (Entry::Seq(..), Some(Err(e))) => ServeRecord::Error {
                    line,
                    message: format!("prediction unavailable: {e}"),
                },
                // The predictor answers every routed query; an empty
                // slot would be a predictor bug — report it as this
                // line's record instead of killing the whole stream.
                (Entry::Seq(..), None) => {
                    ServeRecord::Error { line, message: "prediction unavailable".to_string() }
                }
                (Entry::Failed(message), _) => ServeRecord::Error { line, message },
            };
            writeln!(out, "{}", record.to_json_line()).expect("write stdout");
        }
    };

    for (idx, line) in stdin.lock().lines().enumerate() {
        let line_no = idx as u64 + 1;
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin read error at line {line_no}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // An optional `PLATFORM:` prefix routes the line to a specific
        // stored mapping; the prefix is only consumed when it names one
        // (case-insensitively) — shared with the daemon via
        // `serve::route_line`.
        let Some((id, seq_text)) = route_line(&store, &default_name, &line) else {
            errors += 1;
            pending.push((
                line_no,
                Entry::Failed(format!("no mapping registered under {default_name:?}")),
            ));
            continue;
        };
        match store.get(id).parse(seq_text) {
            Ok(e) => pending.push((line_no, Entry::Seq(id, e))),
            Err(SequenceParseError::Empty) => {} // blank/comment line
            Err(err) => {
                errors += 1;
                pending.push((line_no, Entry::Failed(err.to_string())));
            }
        }
        if pending.len() >= batch {
            flush(&mut pending, &mut out);
        }
    }
    flush(&mut pending, &mut out);
    out.flush().expect("flush stdout");
    let stats = predictor.stats();
    eprintln!(
        "predicted {} sequences in {} batches ({} workers, {:.1}% cache hits, {} errors)",
        stats.queries,
        stats.batches,
        predictor.workers(),
        100.0 * stats.hit_rate(),
        errors
    );
    ExitCode::SUCCESS
}

/// Corpus replay: parse a BHive-style file of disassembled basic
/// blocks, resolve every instruction onto the `--uarch` table's form
/// universe, predict each fully-mapped block's throughput, and emit one
/// JSON record per block plus a final accounting line. Everything on
/// stdout is a pure function of (corpus, uarch, mapping) — worker count
/// never changes a byte.
fn cmd_predict_corpus(args: &[String], corpus_path: &str) -> ExitCode {
    if let Some(isa) = flag(args, "--isa") {
        if !isa.eq_ignore_ascii_case("x86") {
            eprintln!("unsupported --isa {isa}; corpus replay reads x86-64 disassembly");
            return ExitCode::from(2);
        }
    }
    let Some(uarch) = flag(args, "--uarch") else {
        eprintln!("missing --uarch (skl, zen or a72) for corpus replay");
        return ExitCode::from(2);
    };
    let Some(table) = pmevo::x86::by_name(&uarch) else {
        eprintln!("unknown uarch {uarch}; expected skl, zen or a72");
        return ExitCode::from(2);
    };
    let jobs = match positive_parsed_flag(args, "--jobs", 1) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let cache = match parsed_flag(args, "--cache", 1usize << 16) {
        Ok(v) => v,
        Err(c) => return c,
    };
    let store = match build_store(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let Some(id) = store.latest(table.platform()) else {
        eprintln!(
            "corpus replay on {} needs --mapping {}=file.json",
            table.name(),
            table.platform()
        );
        return ExitCode::from(2);
    };
    let label = store.get(id).label();
    // The platform with the same name as the table provides the form
    // universe the table's keys resolve into.
    let Some(platform) = platforms::by_name(table.platform()) else {
        eprintln!("no built-in platform named {}", table.platform());
        return ExitCode::FAILURE;
    };
    let corpus = match std::fs::read_to_string(corpus_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {corpus_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let predictor = Predictor::new(store, PredictorConfig { workers: jobs, cache_capacity: cache });
    let uarch_name = table.name();
    let resolver = pmevo::x86::Resolver::new(table, platform.isa());
    let r = pmevo::x86::replay(&corpus, &resolver, &predictor, id);

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for (block, outcome) in r.outcomes.iter().enumerate() {
        let record = match &outcome.result {
            pmevo::x86::BlockResult::Cycles(cycles) => Value::Obj(vec![
                ("block".into(), Value::UInt(block as u64)),
                ("line".into(), Value::UInt(u64::from(outcome.start_line))),
                ("insts".into(), Value::UInt(u64::from(outcome.insts))),
                ("mapping".into(), Value::Str(label.clone())),
                ("cycles".into(), Value::Num(*cycles)),
            ]),
            pmevo::x86::BlockResult::Unmapped { line, column, reason, detail } => Value::Obj(vec![
                ("block".into(), Value::UInt(block as u64)),
                ("line".into(), Value::UInt(u64::from(*line))),
                ("column".into(), Value::UInt(u64::from(*column))),
                ("reason".into(), Value::Str((*reason).to_string())),
                ("error".into(), Value::Str(detail.clone())),
            ]),
        };
        writeln!(out, "{}", json::write_compact(&record)).expect("write stdout");
    }
    let acc = &r.accounting;
    writeln!(out, "{}", pmevo::x86::accounting_json(acc)).expect("write stdout");
    out.flush().expect("flush stdout");
    eprintln!(
        "replayed {} blocks ({} insts) on {} against {label}: \
         {} predicted, block coverage {:.1}%, inst coverage {:.1}%",
        acc.blocks,
        acc.insts,
        uarch_name,
        acc.mapped_blocks,
        100.0 * acc.block_coverage(),
        100.0 * acc.inst_coverage()
    );
    for (reason, n) in &acc.by_reason {
        eprintln!("  unmapped blocks: {n} {reason}");
    }
    ExitCode::SUCCESS
}

fn cmd_predict(args: &[String]) -> ExitCode {
    if let Some(path) = flag(args, "--corpus") {
        // --corpus switches predict into BHive-style replay mode.
        return cmd_predict_corpus(args, &path);
    }
    let Some(spec) = flag(args, "--experiment") else {
        // No --experiment: the streaming serving mode.
        return cmd_predict_stream(args);
    };
    let platform = match platform_from(args) {
        Ok(p) => p,
        Err(c) => return c,
    };
    let mapping = match load_mapping(args, &platform) {
        Ok(m) => m,
        Err(c) => return c,
    };
    let experiment = match parse_experiment(&platform, &spec) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let predicted = mapping.throughput(&experiment);
    let measured = Measurer::new(&platform, MeasureConfig::default()).measure(&experiment);
    println!("experiment: {experiment}");
    println!("predicted:  {predicted:.3} cycles");
    println!("measured:   {measured:.3} cycles (simulator)");
    println!(
        "rel. error: {:.1}%",
        100.0 * (predicted - measured).abs() / measured
    );
    ExitCode::SUCCESS
}

/// Pipes stdin to a running `pmevo-serve` daemon and the daemon's
/// responses to stdout. The write half is shut down at stdin EOF; the
/// daemon then answers everything still queued and closes, so "read
/// until EOF" collects exactly the responses for our lines — no response
/// counting, no sentinel records.
fn run_client<S>(
    stream: S,
    shutdown_write: impl FnOnce(&S) -> std::io::Result<()> + Send,
) -> ExitCode
where
    S: Read + Write + Send + Sync + 'static,
    for<'a> &'a S: Read + Write,
{
    std::thread::scope(|scope| {
        let sender = scope.spawn(|| -> std::io::Result<()> {
            let mut to_daemon = &stream;
            std::io::copy(&mut std::io::stdin().lock(), &mut to_daemon)?;
            to_daemon.flush()?;
            shutdown_write(&stream)
        });
        let mut stdout = std::io::stdout().lock();
        let received = std::io::copy(&mut BufReadAdapter(&stream), &mut stdout);
        let sent = sender.join().expect("sender thread");
        match (sent, received) {
            (Ok(()), Ok(_)) => ExitCode::SUCCESS,
            (Err(e), _) => {
                eprintln!("error: sending to daemon failed: {e}");
                ExitCode::FAILURE
            }
            (_, Err(e)) => {
                eprintln!("error: reading daemon responses failed: {e}");
                ExitCode::FAILURE
            }
        }
    })
}

/// `std::io::copy` source over `&S` (reads borrow the stream shared
/// with the sender thread).
struct BufReadAdapter<'a, S>(&'a S);

impl<S> Read for BufReadAdapter<'_, S>
where
    for<'a> &'a S: Read,
{
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

fn cmd_client(args: &[String]) -> ExitCode {
    match (flag(args, "--connect"), flag(args, "--unix")) {
        (Some(addr), None) => match std::net::TcpStream::connect(&addr) {
            Ok(stream) => {
                run_client(stream, |s| s.shutdown(std::net::Shutdown::Write))
            }
            Err(e) => {
                eprintln!("error: cannot connect to {addr}: {e}");
                ExitCode::FAILURE
            }
        },
        #[cfg(unix)]
        (None, Some(path)) => match std::os::unix::net::UnixStream::connect(&path) {
            Ok(stream) => {
                run_client(stream, |s| s.shutdown(std::net::Shutdown::Write))
            }
            Err(e) => {
                eprintln!("error: cannot connect to {path}: {e}");
                ExitCode::FAILURE
            }
        },
        #[cfg(not(unix))]
        (None, Some(_)) => {
            eprintln!("error: --unix is only supported on Unix platforms");
            ExitCode::FAILURE
        }
        _ => {
            eprintln!("error: client needs exactly one of --connect HOST:PORT or --unix PATH");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("platforms") => cmd_platforms(),
        Some("infer") => cmd_infer(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        _ => usage(),
    }
}
