//! # PMEvo-rs
//!
//! A reproduction of **"PMEvo: Portable Inference of Port Mappings for
//! Out-of-Order Processors by Evolutionary Optimization"** (Fabian Ritter
//! and Sebastian Hack, PLDI 2020) as a Rust workspace.
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `pmevo-core` | port sets, mappings, experiments, the bottleneck simulation algorithm |
//! | [`lp`] | `pmevo-lp` | two-phase primal simplex solver |
//! | [`isa`] | `pmevo-isa` | instruction forms, register allocation, synthetic ISAs |
//! | [`machine`] | `pmevo-machine` | cycle-level OoO simulator + measurement harness |
//! | [`evo`] | `pmevo-evo` | experiment generation, congruence filtering, evolutionary inference |
//! | [`baselines`] | `pmevo-baselines` | uops.info-, IACA-, llvm-mca-, Ithemal-like predictors |
//! | [`predict`] | `pmevo-predict` | throughput-prediction serving layer: mapping store, batched cached prediction |
//! | [`serve`] | `pmevo-serve` | long-lived prediction daemon: TCP/Unix socket protocol, cross-connection batch coalescing, hot mapping reload |
//! | [`x86`] | `pmevo-x86` | real-ISA ingestion: AT&T/Intel x86-64 parsing, per-uarch form resolution, BHive-style corpus replay |
//! | [`stats`] | `pmevo-stats` | MAPE/Pearson/Spearman, heat maps, tables |
//!
//! # Quickstart
//!
//! The [`Session`] API is the front door: pick a platform (or any
//! [`core::MeasurementBackend`]), an algorithm (defaults to PMEvo), a
//! seed — and run:
//!
//! ```
//! use pmevo::machine::platforms;
//! use pmevo::Session;
//!
//! # fn main() -> Result<(), pmevo::SessionError> {
//! let platform = platforms::a72();
//! let report = Session::builder()
//!     .universe(4, platform.num_ports()) // first 4 forms: doctest-sized
//!     .platform(platform)
//!     .seed(42)
//!     .population(20)
//!     .max_generations(3)
//!     .accuracy_benchmarks(8)
//!     .build()?
//!     .run();
//! assert_eq!(report.mapping.num_insts(), 4);
//! println!("{report}");
//! # Ok(())
//! # }
//! ```
//!
//! [`Service::run_many`] executes many such sessions concurrently over
//! one worker pool, with per-job seeds and (timings aside) bit-identical
//! reports for every worker count. [`SessionReport::predictor`] hands
//! the inferred mapping straight to the [`predict`] serving layer for
//! high-QPS basic-block throughput queries.
//!
//! Long runs can evolve several subpopulations concurrently
//! ([`SessionBuilder::islands`]) and survive interruption: with
//! [`SessionBuilder::checkpoint`] the full evolution state is written
//! atomically as a versioned JSON artifact, and a session rebuilt with
//! [`SessionBuilder::resume_from`] ([`SessionCheckpoint::load`])
//! continues to a report bit-identical to the uninterrupted run's —
//! timings aside — without re-measuring anything.

pub mod session;

pub use pmevo_baselines as baselines;
pub use pmevo_core as core;
pub use pmevo_evo as evo;
pub use pmevo_isa as isa;
pub use pmevo_lp as lp;
pub use pmevo_machine as machine;
pub use pmevo_predict as predict;
pub use pmevo_serve as serve;
pub use pmevo_stats as stats;
pub use pmevo_x86 as x86;

pub use pmevo_core::checkpoint::{CheckpointError, SessionCheckpoint};
pub use session::{
    AccuracyReport, BoxedAlgorithm, BoxedBackend, ReportJsonError, Service, Session,
    SessionBuilder, SessionError, SessionReport,
};
