//! # PMEvo-rs
//!
//! A reproduction of **"PMEvo: Portable Inference of Port Mappings for
//! Out-of-Order Processors by Evolutionary Optimization"** (Fabian Ritter
//! and Sebastian Hack, PLDI 2020) as a Rust workspace.
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `pmevo-core` | port sets, mappings, experiments, the bottleneck simulation algorithm |
//! | [`lp`] | `pmevo-lp` | two-phase primal simplex solver |
//! | [`isa`] | `pmevo-isa` | instruction forms, register allocation, synthetic ISAs |
//! | [`machine`] | `pmevo-machine` | cycle-level OoO simulator + measurement harness |
//! | [`evo`] | `pmevo-evo` | experiment generation, congruence filtering, evolutionary inference |
//! | [`baselines`] | `pmevo-baselines` | uops.info-, IACA-, llvm-mca-, Ithemal-like predictors |
//! | [`stats`] | `pmevo-stats` | MAPE/Pearson/Spearman, heat maps, tables |
//!
//! # Quickstart
//!
//! Infer a port mapping for a simulated machine and check its accuracy:
//!
//! ```
//! use pmevo::evo::{run, PipelineConfig, EvoConfig};
//! use pmevo::machine::{platforms, MeasureConfig, Measurer};
//!
//! // A small, fast configuration (see `examples/` for realistic ones).
//! let platform = platforms::a72();
//! let measurer = Measurer::new(&platform, MeasureConfig::exact());
//! let config = PipelineConfig {
//!     evo: EvoConfig { population_size: 20, max_generations: 3, ..EvoConfig::default() },
//!     ..PipelineConfig::default()
//! };
//! // Infer over the first 4 instruction forms only, to keep the doctest fast.
//! let result = run(4, platform.num_ports(), |exps| {
//!     exps.iter().map(|e| measurer.measure(e)).collect()
//! }, &config);
//! assert_eq!(result.mapping.num_insts(), 4);
//! ```

pub use pmevo_baselines as baselines;
pub use pmevo_core as core;
pub use pmevo_evo as evo;
pub use pmevo_isa as isa;
pub use pmevo_lp as lp;
pub use pmevo_machine as machine;
pub use pmevo_stats as stats;
