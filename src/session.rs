//! The inference-session API: one typed front door to the whole
//! workspace.
//!
//! A [`Session`] bundles the three layers of an inference run —
//! *where measurements come from* ([`pmevo_core::MeasurementBackend`]),
//! *how a mapping is inferred* ([`pmevo_core::InferenceAlgorithm`]) and
//! *what to report* ([`SessionReport`]) — behind a builder:
//!
//! ```
//! use pmevo::machine::platforms;
//! use pmevo::Session;
//!
//! # fn main() -> Result<(), pmevo::SessionError> {
//! let platform = platforms::a72();
//! let report = Session::builder()
//!     .universe(4, platform.num_ports()) // first 4 forms: doctest-sized
//!     .platform(platform)
//!     .seed(7)
//!     .population(30)
//!     .max_generations(2)
//!     .accuracy_benchmarks(16)
//!     .build()?
//!     .run();
//! assert_eq!(report.seed, 7);
//! assert!(report.measurements_performed > 0);
//! let roundtrip = pmevo::SessionReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(roundtrip, report);
//! # Ok(())
//! # }
//! ```
//!
//! [`Service::run_many`] executes many independent sessions over a
//! shared worker pool with per-job seeds; everything in the reports
//! except wall-clock timings is bit-identical for every worker-thread
//! count (see [`SessionReport::without_timings`]).

use pmevo_core::checkpoint::SessionCheckpoint;
use pmevo_core::json::{self, Value};
use pmevo_core::{
    CachingBackend, Experiment, InferenceAlgorithm, InstId, MeasurementBackend,
    MeasurementBudget, RoundStats, SelectionPolicy, ThreeLevelMapping,
};
use pmevo_evo::{CheckpointConfig, PmEvoAlgorithm};
use pmevo_machine::{MeasureConfig, Platform, SimBackend};
use pmevo_stats::AccuracySummary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::channel;
use std::sync::Mutex;
use std::time::Duration;

/// A boxed, thread-transferable measurement backend.
pub type BoxedBackend = Box<dyn MeasurementBackend + Send>;
/// A boxed, thread-transferable inference algorithm.
pub type BoxedAlgorithm = Box<dyn InferenceAlgorithm + Send>;

/// Why a [`SessionBuilder`] could not produce a [`Session`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// Neither a platform nor an explicit instruction universe was
    /// configured, so the session does not know what to infer over.
    MissingUniverse,
    /// Neither a platform nor an explicit backend was configured, so
    /// the session has nothing to measure with.
    MissingBackend,
    /// The configured universe is degenerate (no instructions or no
    /// ports).
    EmptyUniverse,
    /// [`SessionBuilder::resume_from`] without
    /// [`SessionBuilder::checkpoint`]: the continued run needs a path to
    /// keep checkpointing to.
    ResumeWithoutCheckpoint,
    /// The resume snapshot's header disagrees with the session
    /// configuration (the message names the mismatched field).
    CheckpointMismatch(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::MissingUniverse => {
                write!(f, "session needs a platform or an explicit universe(num_insts, num_ports)")
            }
            SessionError::MissingBackend => {
                write!(f, "session needs a platform or an explicit measurement backend")
            }
            SessionError::EmptyUniverse => {
                write!(f, "session universe must have at least one instruction and one port")
            }
            SessionError::ResumeWithoutCheckpoint => {
                write!(f, "resuming needs .checkpoint(path, every) so the continued run keeps checkpointing")
            }
            SessionError::CheckpointMismatch(what) => {
                write!(f, "checkpoint does not match this session: {what}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Builder for [`Session`] — see the [module documentation](self) for
/// the end-to-end example.
///
/// Defaults: the backend is a cached cycle-level simulator over the
/// configured platform ([`SimBackend`] wrapped in a [`CachingBackend`]),
/// the algorithm is PMEvo ([`PmEvoAlgorithm`]) seeded from
/// [`seed`](Self::seed), and accuracy against the platform's hidden
/// ground truth is evaluated on 128 random size-5 benchmarks.
pub struct SessionBuilder {
    label: Option<String>,
    platform: Option<Platform>,
    universe: Option<(usize, usize)>,
    backend: Option<BoxedBackend>,
    algorithm: Option<BoxedAlgorithm>,
    seed: u64,
    measure_config: MeasureConfig,
    cache_measurements: bool,
    population: Option<usize>,
    max_generations: Option<u32>,
    selection: SelectionPolicy,
    budget: MeasurementBudget,
    accuracy_benchmarks: usize,
    benchmark_size: u32,
    islands: u32,
    checkpoint: Option<(PathBuf, u32)>,
    resume_from: Option<Box<SessionCheckpoint>>,
    halt_after_checkpoints: Option<u32>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            label: None,
            platform: None,
            universe: None,
            backend: None,
            algorithm: None,
            seed: 0xA11CE,
            measure_config: MeasureConfig::default(),
            cache_measurements: true,
            population: None,
            max_generations: None,
            selection: SelectionPolicy::OneShot,
            budget: MeasurementBudget::UNLIMITED,
            accuracy_benchmarks: 128,
            benchmark_size: 5,
            islands: 1,
            checkpoint: None,
            resume_from: None,
            halt_after_checkpoints: None,
        }
    }
}

impl SessionBuilder {
    /// A display label for the report (defaults to
    /// `"<algorithm>@<platform>"`).
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The machine to infer for. Provides the instruction universe, the
    /// default simulator backend and the ground truth for the accuracy
    /// report.
    #[must_use]
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Overrides the instruction universe (`0..num_insts` over
    /// `num_ports` ports) — required when running without a platform,
    /// useful with a platform to infer over an ISA prefix.
    #[must_use]
    pub fn universe(mut self, num_insts: usize, num_ports: usize) -> Self {
        self.universe = Some((num_insts, num_ports));
        self
    }

    /// The measurement backend. Defaults to a [`SimBackend`] over the
    /// configured platform.
    #[must_use]
    pub fn backend(mut self, backend: impl MeasurementBackend + Send + 'static) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// The inference algorithm. Defaults to [`PmEvoAlgorithm`] seeded
    /// from [`seed`](Self::seed).
    #[must_use]
    pub fn algorithm(mut self, algorithm: impl InferenceAlgorithm + Send + 'static) -> Self {
        self.algorithm = Some(Box::new(algorithm));
        self
    }

    /// The session seed: it seeds the default algorithm and the
    /// accuracy benchmark sampler. Two sessions with equal
    /// configuration and seed produce identical results.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Measurement-harness configuration for the default simulator
    /// backend (ignored when an explicit backend is set).
    #[must_use]
    pub fn measure_config(mut self, config: MeasureConfig) -> Self {
        self.measure_config = config;
        self
    }

    /// Whether to wrap the backend in a [`CachingBackend`] so repeated
    /// experiments are measured once (default: `true`).
    #[must_use]
    pub fn cache_measurements(mut self, cache: bool) -> Self {
        self.cache_measurements = cache;
        self
    }

    /// Population-size shortcut for the default PMEvo algorithm
    /// (ignored when an explicit algorithm is set).
    #[must_use]
    pub fn population(mut self, population: usize) -> Self {
        self.population = Some(population);
        self
    }

    /// Generation-limit shortcut for the default PMEvo algorithm
    /// (ignored when an explicit algorithm is set).
    #[must_use]
    pub fn max_generations(mut self, generations: u32) -> Self {
        self.max_generations = Some(generations);
        self
    }

    /// The experiment-selection policy (default:
    /// [`SelectionPolicy::OneShot`], the paper's up-front corpus). A
    /// round-based policy makes the default PMEvo algorithm interleave
    /// measure→evolve rounds under [`budget`](Self::budget); like the
    /// other algorithm shortcuts it is ignored when an explicit
    /// algorithm is set, but always recorded in the report.
    #[must_use]
    pub fn selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// The measurement budget for a round-based
    /// [`selection`](Self::selection) policy (default: unlimited).
    /// Ignored when an explicit algorithm is set, but always recorded in
    /// the report.
    #[must_use]
    pub fn budget(mut self, budget: MeasurementBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Number of concurrently evolving subpopulations for the default
    /// PMEvo algorithm (default: 1, the paper's classic loop, bit for
    /// bit). Islands share one worker pool and exchange their best
    /// individuals over a fixed ring on a deterministic schedule, so
    /// results are bit-identical for every worker count. Ignored when an
    /// explicit algorithm is set.
    #[must_use]
    pub fn islands(mut self, count: u32) -> Self {
        self.islands = count.max(1);
        self
    }

    /// Checkpoint the full evolution state to `path` every `every`
    /// generations (plus at every phase boundary). The artifact is
    /// written atomically and a run resumed from it via
    /// [`resume_from`](Self::resume_from) is bit-identical to the
    /// uninterrupted one, up to wall-clock timings. Ignored when an
    /// explicit algorithm is set.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: u32) -> Self {
        self.checkpoint = Some((path.into(), every));
        self
    }

    /// Continue from a checkpoint previously written by
    /// [`checkpoint`](Self::checkpoint) (load it with
    /// [`SessionCheckpoint::load`]). Requires a checkpoint path so the
    /// continued run keeps checkpointing; when
    /// [`population`](Self::population) is unset it is adopted from the
    /// snapshot. [`build`](Self::build) rejects snapshots whose header
    /// (universe, seed, islands, selection, budget) disagrees with the
    /// session configuration.
    #[must_use]
    pub fn resume_from(mut self, snapshot: SessionCheckpoint) -> Self {
        self.resume_from = Some(Box::new(snapshot));
        self
    }

    /// Stop the run right after this many checkpoint writes — a
    /// deterministic stand-in for killing the process, used by the
    /// resume tests and `pmevo-cli infer --halt-after-checkpoints`.
    #[must_use]
    pub fn halt_after_checkpoints(mut self, count: u32) -> Self {
        self.halt_after_checkpoints = Some(count);
        self
    }

    /// Number of held-out benchmarks for the ground-truth accuracy
    /// report (0 disables it; it is also skipped without a platform).
    #[must_use]
    pub fn accuracy_benchmarks(mut self, count: usize) -> Self {
        self.accuracy_benchmarks = count;
        self
    }

    /// Instruction count per accuracy benchmark (paper §5.3 uses 5).
    #[must_use]
    pub fn benchmark_size(mut self, size: u32) -> Self {
        self.benchmark_size = size.max(1);
        self
    }

    /// Validates the configuration and assembles the [`Session`].
    ///
    /// # Errors
    ///
    /// See [`SessionError`].
    pub fn build(self) -> Result<Session, SessionError> {
        let (num_insts, num_ports) = match (self.universe, &self.platform) {
            (Some(u), _) => u,
            (None, Some(p)) => (p.isa().len(), p.num_ports()),
            (None, None) => return Err(SessionError::MissingUniverse),
        };
        if num_insts == 0 || num_ports == 0 {
            return Err(SessionError::EmptyUniverse);
        }
        if let Some(cp) = &self.resume_from {
            if self.checkpoint.is_none() {
                return Err(SessionError::ResumeWithoutCheckpoint);
            }
            let mismatch = |what: String| Err(SessionError::CheckpointMismatch(what));
            if (cp.num_insts, cp.num_ports) != (num_insts, num_ports) {
                return mismatch(format!(
                    "checkpointed universe is {}x{}, the session's is {num_insts}x{num_ports}",
                    cp.num_insts, cp.num_ports
                ));
            }
            if cp.seed != self.seed {
                return mismatch(format!(
                    "checkpointed seed is {}, the session's is {}",
                    cp.seed, self.seed
                ));
            }
            if cp.islands != self.islands {
                return mismatch(format!(
                    "checkpointed island count is {}, the session's is {}",
                    cp.islands, self.islands
                ));
            }
            if self.population.is_some_and(|p| cp.population_size != p as u64) {
                return mismatch(format!(
                    "checkpointed population size is {}, the session's is {}",
                    cp.population_size,
                    self.population.unwrap_or(0)
                ));
            }
            if cp.selection != self.selection {
                return mismatch("the selection policies differ".into());
            }
            if cp.budget != self.budget {
                return mismatch("the measurement budgets differ".into());
            }
        }
        let backend: BoxedBackend = match (self.backend, &self.platform) {
            (Some(b), _) => b,
            (None, Some(p)) => Box::new(SimBackend::new(p.clone(), self.measure_config)),
            (None, None) => return Err(SessionError::MissingBackend),
        };
        let backend: BoxedBackend = if self.cache_measurements {
            Box::new(CachingBackend::new(backend))
        } else {
            backend
        };
        let algorithm: BoxedAlgorithm = match self.algorithm {
            Some(a) => a,
            None => {
                let mut pmevo =
                    PmEvoAlgorithm::with_selection(self.seed, self.selection, self.budget);
                if let Some(p) = self.population {
                    pmevo.config.evo.population_size = p;
                } else if let Some(cp) = &self.resume_from {
                    // The artifact pins the population size of a resumed
                    // run when the session does not.
                    pmevo.config.evo.population_size = cp.population_size as usize;
                }
                if let Some(g) = self.max_generations {
                    pmevo.config.evo.max_generations = g;
                }
                pmevo.config.islands.count = self.islands;
                if let Some((path, every)) = self.checkpoint {
                    pmevo.config.checkpoint = Some(CheckpointConfig {
                        path,
                        every,
                        resume_from: self.resume_from,
                        halt_after: self.halt_after_checkpoints,
                    });
                }
                Box::new(pmevo)
            }
        };
        let label = self.label.unwrap_or_else(|| {
            let target = self
                .platform
                .as_ref()
                .map(|p| p.name().to_owned())
                .unwrap_or_else(|| format!("{num_insts}x{num_ports}"));
            format!("{}@{}", algorithm.name(), target)
        });
        Ok(Session {
            label,
            platform: self.platform,
            num_insts,
            num_ports,
            backend,
            algorithm,
            seed: self.seed,
            selection: self.selection,
            budget: self.budget,
            accuracy_benchmarks: self.accuracy_benchmarks,
            benchmark_size: self.benchmark_size,
        })
    }
}

/// One configured inference run: universe + backend + algorithm.
/// Produced by [`Session::builder`], consumed by [`Session::run`].
pub struct Session {
    label: String,
    platform: Option<Platform>,
    num_insts: usize,
    num_ports: usize,
    backend: BoxedBackend,
    algorithm: BoxedAlgorithm,
    seed: u64,
    selection: SelectionPolicy,
    budget: MeasurementBudget,
    accuracy_benchmarks: usize,
    benchmark_size: u32,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("label", &self.label)
            .field("num_insts", &self.num_insts)
            .field("num_ports", &self.num_ports)
            .field("backend", &self.backend.name())
            .field("algorithm", &self.algorithm.name())
            .field("seed", &self.seed)
            .finish()
    }
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The session's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The session seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Caps the algorithm's internal worker threads (used by
    /// [`Service::run_many`] so concurrent sessions do not oversubscribe
    /// the machine). Results are unaffected — inference is
    /// thread-count-independent by contract.
    pub fn set_worker_threads(&mut self, threads: usize) {
        self.algorithm.set_worker_threads(threads);
    }

    /// Runs inference and assembles the report.
    ///
    /// # Panics
    ///
    /// Panics if the backend misbehaves (wrong batch sizes, non-positive
    /// measurements) or cannot measure the requested experiments.
    pub fn run(mut self) -> SessionReport {
        let inferred =
            self.algorithm
                .infer(self.num_insts, self.num_ports, &mut self.backend);
        let mut accuracy = None;
        let mut accuracy_trajectory = Vec::new();
        if let Some(platform) = self.platform.as_ref() {
            if self.accuracy_benchmarks > 0 {
                // Held-out accuracy against the hidden ground truth, on
                // seed-derived random multisets (paper §5.3 style). Pure
                // model evaluation: deterministic and measurement-free.
                let gt = platform.ground_truth();
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0xACC0_57A7);
                let mut benchmarks = Vec::with_capacity(self.accuracy_benchmarks);
                let mut reference = Vec::with_capacity(self.accuracy_benchmarks);
                for _ in 0..self.accuracy_benchmarks {
                    let counts: Vec<(InstId, u32)> = (0..self.benchmark_size)
                        .map(|_| (InstId(rng.gen_range(0..self.num_insts as u32)), 1))
                        .collect();
                    let e = Experiment::from_counts(&counts);
                    reference.push(gt.throughput(&e));
                    benchmarks.push(e);
                }
                let summarize = |mapping: &ThreeLevelMapping| {
                    let predicted: Vec<f64> =
                        benchmarks.iter().map(|e| mapping.throughput(e)).collect();
                    AccuracySummary::compute(&predicted, &reference)
                };
                let summary = summarize(&inferred.mapping);
                accuracy = Some(AccuracyReport {
                    mape: summary.mape,
                    pearson: summary.pearson,
                    spearman: summary.spearman,
                    num_benchmarks: self.accuracy_benchmarks,
                });
                // The budget-vs-quality trajectory: held-out MAPE of the
                // best mapping after each measurement round, on the same
                // benchmark set.
                accuracy_trajectory = inferred
                    .round_mappings
                    .iter()
                    .map(|m| summarize(m).mape)
                    .collect();
            }
        }
        SessionReport {
            label: self.label,
            platform: self.platform.as_ref().map(|p| p.name().to_owned()),
            backend: self.backend.name().to_owned(),
            algorithm: inferred.algorithm,
            seed: self.seed,
            selection: self.selection,
            budget: self.budget,
            num_insts: self.num_insts,
            num_ports: self.num_ports,
            num_experiments: inferred.num_experiments,
            measurements_performed: inferred.measurements_performed,
            benchmarking_time: inferred.benchmarking_time,
            inference_time: inferred.inference_time,
            congruent_fraction: inferred.congruent_fraction,
            num_classes: inferred.num_classes,
            training_error: inferred.training_error,
            rounds: inferred.rounds,
            accuracy,
            accuracy_trajectory,
            mapping: inferred.mapping,
        }
    }
}

/// Held-out accuracy of the inferred mapping against the platform's
/// hidden ground-truth model (paper Tables 3/4 metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Mean absolute percentage error, in percent.
    pub mape: f64,
    /// Pearson correlation coefficient.
    pub pearson: f64,
    /// Spearman rank correlation coefficient.
    pub spearman: f64,
    /// Number of random benchmarks evaluated.
    pub num_benchmarks: usize,
}

/// The serializable outcome of one [`Session::run`]: the inferred
/// mapping plus Table-2-style bookkeeping and the held-out accuracy.
///
/// Every field is a deterministic function of the session configuration
/// and seed **except the wall-clock timings**, of which there are three
/// kinds: [`benchmarking_time`](Self::benchmarking_time),
/// [`inference_time`](Self::inference_time), and the per-round
/// [`RoundStats::measurement_time`] entries inside
/// [`rounds`](Self::rounds). [`Self::without_timings`] zeroes all three
/// for bit-exact comparisons (enforced by a regression test in
/// `tests/session_api.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The session's display label.
    pub label: String,
    /// Platform name, when the session had one.
    pub platform: Option<String>,
    /// Backend name (after decorators, e.g. `"cached(sim(SKL))"`).
    pub backend: String,
    /// Algorithm name.
    pub algorithm: String,
    /// The session seed.
    pub seed: u64,
    /// The configured experiment-selection policy.
    pub selection: SelectionPolicy,
    /// The configured measurement budget.
    pub budget: MeasurementBudget,
    /// Size of the instruction universe inferred over.
    pub num_insts: usize,
    /// Number of execution ports inferred over.
    pub num_ports: usize,
    /// Number of distinct training experiments.
    pub num_experiments: usize,
    /// Real measurements performed (deduplicated experiments count
    /// once).
    pub measurements_performed: u64,
    /// Wall-clock time the backend spent measuring.
    pub benchmarking_time: Duration,
    /// Wall-clock time spent inferring.
    pub inference_time: Duration,
    /// Fraction of instructions merged away by congruence filtering.
    pub congruent_fraction: f64,
    /// Number of congruence classes seen by the optimizer.
    pub num_classes: usize,
    /// Training `D_avg` of the inferred mapping, when reported.
    pub training_error: Option<f64>,
    /// Per-round measurement accounting (round 0 is the seed corpus; a
    /// single round for one-shot algorithms that report it).
    pub rounds: Vec<RoundStats>,
    /// Held-out accuracy against the ground truth, when a platform was
    /// configured.
    pub accuracy: Option<AccuracyReport>,
    /// Held-out MAPE (same benchmark set as
    /// [`accuracy`](Self::accuracy)) of the best mapping after each
    /// round, parallel to [`rounds`](Self::rounds) — the
    /// budget-vs-quality trajectory. Empty without a platform or
    /// accuracy benchmarks.
    pub accuracy_trajectory: Vec<f64>,
    /// The inferred mapping itself.
    pub mapping: ThreeLevelMapping,
}

/// Failure to read a [`SessionReport`] from JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportJsonError {
    /// The input was not valid JSON.
    Parse(json::ParseError),
    /// The JSON was valid but not a session report of the expected
    /// shape.
    Shape(String),
}

impl fmt::Display for ReportJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportJsonError::Parse(e) => write!(f, "{e}"),
            ReportJsonError::Shape(msg) => write!(f, "invalid session report JSON: {msg}"),
        }
    }
}

impl std::error::Error for ReportJsonError {}

fn duration_to_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl SessionReport {
    /// A copy with all wall-clock timings zeroed (the two totals and
    /// every round's measurement time) — every remaining field is
    /// bit-identical across runs with the same configuration and seed,
    /// regardless of worker-thread counts.
    #[must_use]
    pub fn without_timings(&self) -> SessionReport {
        SessionReport {
            benchmarking_time: Duration::ZERO,
            inference_time: Duration::ZERO,
            rounds: self.rounds.iter().map(|r| r.without_timing()).collect(),
            ..self.clone()
        }
    }

    /// The report as a [`json::Value`] tree (durations in integer
    /// nanoseconds, so serialization is lossless).
    pub fn to_json_value(&self) -> Value {
        let opt_num = |v: Option<f64>| v.map(Value::Num).unwrap_or(Value::Null);
        let accuracy = match &self.accuracy {
            None => Value::Null,
            Some(a) => Value::Obj(vec![
                ("mape".into(), Value::Num(a.mape)),
                ("pearson".into(), Value::Num(a.pearson)),
                ("spearman".into(), Value::Num(a.spearman)),
                ("num_benchmarks".into(), Value::UInt(a.num_benchmarks as u64)),
            ]),
        };
        Value::Obj(vec![
            ("label".into(), Value::Str(self.label.clone())),
            (
                "platform".into(),
                self.platform
                    .clone()
                    .map(Value::Str)
                    .unwrap_or(Value::Null),
            ),
            ("backend".into(), Value::Str(self.backend.clone())),
            ("algorithm".into(), Value::Str(self.algorithm.clone())),
            ("seed".into(), Value::UInt(self.seed)),
            ("selection".into(), self.selection.to_json_value()),
            ("budget".into(), self.budget.to_json_value()),
            ("num_insts".into(), Value::UInt(self.num_insts as u64)),
            ("num_ports".into(), Value::UInt(self.num_ports as u64)),
            ("num_experiments".into(), Value::UInt(self.num_experiments as u64)),
            (
                "measurements_performed".into(),
                Value::UInt(self.measurements_performed),
            ),
            (
                "benchmarking_time_ns".into(),
                Value::UInt(duration_to_ns(self.benchmarking_time)),
            ),
            (
                "inference_time_ns".into(),
                Value::UInt(duration_to_ns(self.inference_time)),
            ),
            ("congruent_fraction".into(), Value::Num(self.congruent_fraction)),
            ("num_classes".into(), Value::UInt(self.num_classes as u64)),
            ("training_error".into(), opt_num(self.training_error)),
            (
                "rounds".into(),
                Value::Arr(self.rounds.iter().map(RoundStats::to_json_value).collect()),
            ),
            ("accuracy".into(), accuracy),
            (
                "accuracy_trajectory".into(),
                Value::Arr(
                    self.accuracy_trajectory
                        .iter()
                        .map(|&m| Value::Num(m))
                        .collect(),
                ),
            ),
            ("mapping".into(), self.mapping.to_json_value()),
        ])
    }

    /// Serializes the report as compact JSON.
    pub fn to_json(&self) -> String {
        json::write_compact(&self.to_json_value())
    }

    /// Serializes the report as 2-space-indented JSON.
    pub fn to_json_pretty(&self) -> String {
        json::write_pretty(&self.to_json_value())
    }

    /// Parses a report produced by [`Self::to_json`] /
    /// [`Self::to_json_pretty`]; the round trip is bit-identical for
    /// finite float fields.
    pub fn from_json(input: &str) -> Result<Self, ReportJsonError> {
        let doc = json::parse(input).map_err(ReportJsonError::Parse)?;
        Self::from_json_value(&doc)
    }

    /// Reads a report from an already-parsed [`json::Value`] tree.
    pub fn from_json_value(doc: &Value) -> Result<Self, ReportJsonError> {
        let shape = |what: &str| ReportJsonError::Shape(what.to_owned());
        let str_field = |name: &str| -> Result<String, ReportJsonError> {
            match doc.get(name) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(shape(&format!("missing string field `{name}`"))),
            }
        };
        let uint_field = |name: &str| -> Result<u64, ReportJsonError> {
            doc.get(name)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| shape(&format!("missing integer field `{name}`")))
        };
        let num_field = |v: Option<&Value>, name: &str| -> Result<f64, ReportJsonError> {
            match v {
                Some(&Value::Num(f)) => Ok(f),
                Some(&Value::UInt(n)) => Ok(n as f64),
                _ => Err(shape(&format!("missing number field `{name}`"))),
            }
        };
        let platform = match doc.get("platform") {
            Some(Value::Str(s)) => Some(s.clone()),
            Some(Value::Null) | None => None,
            _ => return Err(shape("field `platform` must be a string or null")),
        };
        let training_error = match doc.get("training_error") {
            Some(&Value::Num(f)) => Some(f),
            Some(&Value::UInt(n)) => Some(n as f64),
            Some(Value::Null) | None => None,
            _ => return Err(shape("field `training_error` must be a number or null")),
        };
        let accuracy = match doc.get("accuracy") {
            Some(Value::Null) | None => None,
            Some(a @ Value::Obj(_)) => Some(AccuracyReport {
                mape: num_field(a.get("mape"), "accuracy.mape")?,
                pearson: num_field(a.get("pearson"), "accuracy.pearson")?,
                spearman: num_field(a.get("spearman"), "accuracy.spearman")?,
                num_benchmarks: a
                    .get("num_benchmarks")
                    .and_then(|v| v.as_u64())
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| shape("missing integer field `accuracy.num_benchmarks`"))?,
            }),
            _ => return Err(shape("field `accuracy` must be an object or null")),
        };
        let mapping = doc
            .get("mapping")
            .ok_or_else(|| shape("missing field `mapping`"))
            .and_then(|v| {
                ThreeLevelMapping::from_json_value(v)
                    .map_err(|e| shape(&format!("field `mapping`: {e}")))
            })?;
        let selection = doc
            .get("selection")
            .ok_or_else(|| shape("missing field `selection`"))
            .and_then(|v| {
                SelectionPolicy::from_json_value(v).map_err(|e| shape(&format!("field `selection`: {e}")))
            })?;
        let budget = doc
            .get("budget")
            .ok_or_else(|| shape("missing field `budget`"))
            .and_then(|v| {
                MeasurementBudget::from_json_value(v)
                    .map_err(|e| shape(&format!("field `budget`: {e}")))
            })?;
        let rounds = doc
            .get("rounds")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape("missing array field `rounds`"))?
            .iter()
            .map(|v| {
                RoundStats::from_json_value(v).map_err(|e| shape(&format!("field `rounds`: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let accuracy_trajectory = doc
            .get("accuracy_trajectory")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape("missing array field `accuracy_trajectory`"))?
            .iter()
            .enumerate()
            .map(|(i, v)| num_field(Some(v), &format!("accuracy_trajectory[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let as_usize = |n: u64, name: &str| {
            usize::try_from(n).map_err(|_| shape(&format!("field `{name}` overflows usize")))
        };
        Ok(SessionReport {
            label: str_field("label")?,
            platform,
            backend: str_field("backend")?,
            algorithm: str_field("algorithm")?,
            seed: uint_field("seed")?,
            selection,
            budget,
            num_insts: as_usize(uint_field("num_insts")?, "num_insts")?,
            num_ports: as_usize(uint_field("num_ports")?, "num_ports")?,
            num_experiments: as_usize(uint_field("num_experiments")?, "num_experiments")?,
            measurements_performed: uint_field("measurements_performed")?,
            benchmarking_time: Duration::from_nanos(uint_field("benchmarking_time_ns")?),
            inference_time: Duration::from_nanos(uint_field("inference_time_ns")?),
            congruent_fraction: num_field(doc.get("congruent_fraction"), "congruent_fraction")?,
            num_classes: as_usize(uint_field("num_classes")?, "num_classes")?,
            training_error,
            rounds,
            accuracy,
            accuracy_trajectory,
            mapping,
        })
    }
}

impl SessionReport {
    /// Turns the inferred mapping into a ready-to-serve
    /// [`Predictor`](pmevo_predict::Predictor) — the bridge from the
    /// inference layers to the `pmevo-predict` serving layer.
    ///
    /// The mapping is registered in a fresh
    /// [`MappingStore`](pmevo_predict::MappingStore) under the
    /// platform's name (the report label when no platform is known).
    /// Instruction names come from the platform's ISA when the platform
    /// is a built-in; otherwise sequences address instructions by their
    /// dense ids (`i0`, `i1`, …).
    ///
    /// # Example
    ///
    /// ```
    /// use pmevo::machine::platforms;
    /// use pmevo::Session;
    ///
    /// # fn main() -> Result<(), pmevo::SessionError> {
    /// let platform = platforms::tiny();
    /// let report = Session::builder()
    ///     .platform(platform)
    ///     .seed(3)
    ///     .population(30)
    ///     .max_generations(2)
    ///     .accuracy_benchmarks(0)
    ///     .build()?
    ///     .run();
    /// let service = report.predictor();
    /// let store = service.snapshot();
    /// let id = store.latest("TINY").expect("mapping registered");
    /// let block = store.get(id).parse("add_r64_r64_r64 x2").unwrap();
    /// assert!(service.predict(id, &block) > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn predictor(&self) -> pmevo_predict::Predictor {
        self.predictor_with(pmevo_predict::PredictorConfig::default())
    }

    /// [`predictor`](Self::predictor) with an explicit worker/cache
    /// configuration.
    pub fn predictor_with(&self, config: pmevo_predict::PredictorConfig) -> pmevo_predict::Predictor {
        let name = self.platform.clone().unwrap_or_else(|| self.label.clone());
        let inst_names: Vec<String> = self
            .platform
            .as_deref()
            .and_then(pmevo_machine::platform::by_name)
            .filter(|p| p.isa().len() >= self.mapping.num_insts())
            .map(|p| {
                p.isa()
                    .forms()
                    .iter()
                    .take(self.mapping.num_insts())
                    .map(|f| f.name.clone())
                    .collect()
            })
            .unwrap_or_else(|| (0..self.mapping.num_insts()).map(|i| format!("i{i}")).collect());
        let mut store = pmevo_predict::MappingStore::new();
        store.insert(name, inst_names, self.mapping.clone());
        pmevo_predict::Predictor::new(store, config)
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "session {} ({} on {}, seed {})",
            self.label,
            self.algorithm,
            self.platform.as_deref().unwrap_or("custom universe"),
            self.seed
        )?;
        writeln!(
            f,
            "  universe      {} forms x {} ports, {} experiments, {} measurements",
            self.num_insts, self.num_ports, self.num_experiments, self.measurements_performed
        )?;
        writeln!(
            f,
            "  time          benchmarking {:.1?}, inference {:.1?}",
            self.benchmarking_time, self.inference_time
        )?;
        if self.selection.is_adaptive() {
            writeln!(
                f,
                "  selection     {} (budget {}), {} rounds",
                self.selection,
                self.budget,
                self.rounds.len()
            )?;
        }
        writeln!(
            f,
            "  congruence    {:.0}% merged, {} classes",
            100.0 * self.congruent_fraction,
            self.num_classes
        )?;
        if let Some(err) = self.training_error {
            writeln!(f, "  training      D_avg = {err:.4}")?;
        }
        if let Some(a) = &self.accuracy {
            writeln!(
                f,
                "  accuracy      MAPE {:.1}%, PCC {:.2}, SCC {:.2} ({} benchmarks)",
                a.mape, a.pearson, a.spearman, a.num_benchmarks
            )?;
        }
        write!(f, "  mapping       {} distinct µops", self.mapping.num_distinct_uops())
    }
}

/// Executes many independent [`Session`]s concurrently over one shared
/// pool of worker threads.
///
/// Each worker runs whole sessions pulled from a shared queue, and the
/// machine's cores are divided between the concurrent workers: each
/// session's internal fitness-evaluation parallelism is capped to
/// `available_parallelism / workers` (via
/// [`Session::set_worker_threads`]), so a single job still uses the
/// whole machine while many concurrent jobs never oversubscribe it.
/// Island-model sessions ([`SessionBuilder::islands`]) need no special
/// treatment: a session's islands evolve over its own share of the pool
/// (every generation's candidates across all islands are evaluated as
/// one batch), so islands and sessions schedule over the same workers.
/// Because inference is thread-count-independent by contract, the
/// reports are bit-identical — up to wall-clock timings, see
/// [`SessionReport::without_timings`] — for every worker count and
/// island schedule.
///
/// # Example
///
/// ```no_run
/// use pmevo::machine::platforms;
/// use pmevo::{Service, Session};
///
/// let jobs: Vec<Session> = (0..4)
///     .map(|seed| {
///         Session::builder()
///             .platform(platforms::a72())
///             .seed(seed)
///             .build()
///             .expect("session configuration is valid")
///     })
///     .collect();
/// let reports = Service::new(2).run_many(jobs);
/// assert_eq!(reports.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Service {
    worker_threads: usize,
}

impl Service {
    /// Creates a service with a pool of `worker_threads` session
    /// workers.
    ///
    /// # Panics
    ///
    /// Panics if `worker_threads` is zero.
    pub fn new(worker_threads: usize) -> Self {
        assert!(worker_threads > 0, "need at least one worker thread");
        Service { worker_threads }
    }

    /// A service sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Service::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }

    /// The pool size.
    pub fn worker_threads(&self) -> usize {
        self.worker_threads
    }

    /// Runs every session to completion, returning reports in job
    /// order.
    ///
    /// # Panics
    ///
    /// If a session panics, the panic is re-raised on the caller after
    /// the remaining workers have drained.
    pub fn run_many(&self, mut jobs: Vec<Session>) -> Vec<SessionReport> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        // Split the machine between the concurrent session workers: each
        // session's internal fitness evaluation gets its share of the
        // cores, so one job on a one-worker service still parallelizes
        // fully while eight concurrent jobs do not oversubscribe.
        // Reports are unaffected either way (thread-count independence).
        let workers = self.worker_threads.min(n);
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(4);
        for job in &mut jobs {
            job.set_worker_threads((cores / workers).max(1));
        }
        if workers == 1 {
            return jobs.into_iter().map(Session::run).collect();
        }
        let queue: Mutex<VecDeque<(usize, Session)>> =
            Mutex::new(jobs.into_iter().enumerate().collect());
        let queue = &queue;
        let (result_tx, result_rx) = channel();
        let mut out: Vec<Option<SessionReport>> = (0..n).map(|_| None).collect();
        let mut panic_payload = None;
        std::thread::scope(|scope| {
            for _ in 0..self.worker_threads.min(n) {
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    let job = queue.lock().expect("job queue poisoned").pop_front();
                    let Some((idx, session)) = job else { break };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        session.run()
                    }));
                    let failed = outcome.is_err();
                    if result_tx.send((idx, outcome)).is_err() || failed {
                        break;
                    }
                });
            }
            drop(result_tx);
            for (idx, outcome) in result_rx {
                match outcome {
                    Ok(report) => out[idx] = Some(report),
                    Err(payload) => {
                        panic_payload.get_or_insert(payload);
                        // Drain the queue so the remaining workers stop
                        // picking up new jobs.
                        queue.lock().expect("job queue poisoned").clear();
                    }
                }
            }
        });
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        out.into_iter()
            .map(|r| r.expect("every job reported or the panic re-raised"))
            .collect()
    }
}
